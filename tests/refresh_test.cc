#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/tabula.h"
#include "data/taxi_gen.h"
#include "data/workload.h"
#include "loss/mean_loss.h"

namespace tabula {
namespace {

/// Appends `n` rows of `source` (row ids [0, n)) to `target`.
void AppendRows(Table* target, const Table& source, size_t n) {
  for (RowId r = 0; r < n; ++r) {
    ASSERT_TRUE(target->AppendRowFrom(source, r).ok());
  }
}

class RefreshTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TaxiGeneratorOptions gen;
    gen.num_rows = 20000;
    gen.seed = 51;
    table_ = TaxiGenerator(gen).Generate();
    gen.seed = 52;  // different rides, same attribute domains
    extra_ = TaxiGenerator(gen).Generate();
    loss_ = std::make_unique<MeanLoss>("fare_amount");
    options_.cubed_attributes = {"payment_type", "rate_code"};
    options_.loss = loss_.get();
    options_.threshold = 0.05;
    options_.keep_maintenance_state = true;
  }

  /// Checks the deterministic guarantee on a workload.
  void VerifyGuarantee(const Tabula& tabula) {
    WorkloadOptions wopts;
    wopts.num_queries = 30;
    auto workload =
        GenerateWorkload(*table_, options_.cubed_attributes, wopts);
    ASSERT_TRUE(workload.ok());
    for (const auto& q : workload.value()) {
      auto answer = tabula.Query(q.where);
      ASSERT_TRUE(answer.ok());
      auto pred = BoundPredicate::Bind(*table_, q.where);
      DatasetView truth(table_.get(), pred->FilterAll());
      if (truth.empty()) continue;
      EXPECT_LE(loss_->Loss(truth, answer->sample).value(),
                options_.threshold)
          << q.ToString();
    }
  }

  std::unique_ptr<Table> table_;
  std::unique_ptr<Table> extra_;
  std::unique_ptr<MeanLoss> loss_;
  TabulaOptions options_;
};

TEST_F(RefreshTest, NoOpWhenNothingAppended) {
  auto tabula = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(tabula.ok());
  Tabula::RefreshStats stats;
  ASSERT_TRUE(tabula.value()->Refresh(&stats).ok());
  EXPECT_EQ(stats.new_rows, 0u);
  EXPECT_FALSE(stats.full_rebuild);
}

TEST_F(RefreshTest, GuaranteeHoldsAfterAppends) {
  auto tabula = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(tabula.ok());
  // Append 25% more rides drawn from a shifted distribution.
  AppendRows(table_.get(), *extra_, 5000);
  Tabula::RefreshStats stats;
  ASSERT_TRUE(tabula.value()->Refresh(&stats).ok());
  EXPECT_EQ(stats.new_rows, 5000u);
  VerifyGuarantee(*tabula.value());
}

TEST_F(RefreshTest, SkewedAppendCreatesIcebergCells) {
  auto tabula = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(tabula.ok());
  size_t before = tabula.value()->cube_table().size();

  // Append rides that massively skew one cell: No-Charge rides with an
  // absurd fare, so (payment_type='No Charge') must become iceberg.
  const Schema& schema = table_->schema();
  std::vector<Value> row(schema.num_fields());
  for (size_t i = 0; i < 2000; ++i) {
    row[0] = Value("CMT");
    row[1] = Value("Mon");
    row[2] = Value("1");
    row[3] = Value("No Charge");
    row[4] = Value("Standard");
    row[5] = Value("N");
    row[6] = Value("Mon");
    row[7] = Value("[0,5)");
    row[8] = Value(1.0);
    row[9] = Value(500.0);  // fare far above the global mean
    row[10] = Value(0.0);
    row[11] = Value(0.5);
    row[12] = Value(0.5);
    ASSERT_TRUE(table_->AppendRow(row).ok());
  }
  Tabula::RefreshStats stats;
  ASSERT_TRUE(tabula.value()->Refresh(&stats).ok());
  EXPECT_FALSE(stats.full_rebuild);
  EXPECT_GE(tabula.value()->cube_table().size() + stats.dropped_iceberg_cells,
            before);

  // The skewed cell answers within θ of its (new) truth.
  auto answer = tabula.value()->Query(
      {{"payment_type", CompareOp::kEq, Value("No Charge")}});
  ASSERT_TRUE(answer.ok());
  auto pred = BoundPredicate::Bind(
      *table_, {{"payment_type", CompareOp::kEq, Value("No Charge")}});
  DatasetView truth(table_.get(), pred->FilterAll());
  EXPECT_LE(loss_->Loss(truth, answer->sample).value(), options_.threshold);
  VerifyGuarantee(*tabula.value());
}

TEST_F(RefreshTest, NewAttributeValueTriggersFullRebuild) {
  auto tabula = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(tabula.ok());
  std::vector<Value> row(table_->schema().num_fields());
  row[0] = Value("CMT");
  row[1] = Value("Mon");
  row[2] = Value("1");
  row[3] = Value("Crypto");  // unseen payment type
  row[4] = Value("Standard");
  row[5] = Value("N");
  row[6] = Value("Mon");
  row[7] = Value("[0,5)");
  row[8] = Value(1.0);
  row[9] = Value(10.0);
  row[10] = Value(0.0);
  row[11] = Value(0.5);
  row[12] = Value(0.5);
  ASSERT_TRUE(table_->AppendRow(row).ok());

  Tabula::RefreshStats stats;
  ASSERT_TRUE(tabula.value()->Refresh(&stats).ok());
  EXPECT_TRUE(stats.full_rebuild);
  // The new value is queryable afterwards.
  auto answer = tabula.value()->Query(
      {{"payment_type", CompareOp::kEq, Value("Crypto")}});
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->empty_cell);
  VerifyGuarantee(*tabula.value());
}

TEST_F(RefreshTest, WorksWithoutKeptMaintenanceState) {
  options_.keep_maintenance_state = false;
  auto tabula = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(tabula.ok());
  AppendRows(table_.get(), *extra_, 3000);
  Tabula::RefreshStats stats;
  ASSERT_TRUE(tabula.value()->Refresh(&stats).ok());
  EXPECT_EQ(stats.new_rows, 3000u);
  VerifyGuarantee(*tabula.value());
}

TEST_F(RefreshTest, RepeatedRefreshes) {
  auto tabula = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(tabula.ok());
  for (size_t batch = 0; batch < 3; ++batch) {
    AppendRows(table_.get(), *extra_, 1500);
    Tabula::RefreshStats stats;
    ASSERT_TRUE(tabula.value()->Refresh(&stats).ok());
    EXPECT_EQ(stats.new_rows, 1500u);
  }
  VerifyGuarantee(*tabula.value());
}

TEST_F(RefreshTest, GenerationBumpsOnlyWhenTheCubeMutates) {
  auto tabula = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(tabula.ok());
  const uint64_t g0 = tabula.value()->generation();

  // No-op refresh: nothing appended, nothing mutated, no bump.
  ASSERT_TRUE(tabula.value()->Refresh().ok());
  EXPECT_EQ(tabula.value()->generation(), g0);

  // Incremental refresh: bump.
  AppendRows(table_.get(), *extra_, 1000);
  ASSERT_TRUE(tabula.value()->Refresh().ok());
  const uint64_t g1 = tabula.value()->generation();
  EXPECT_GT(g1, g0);

  // Full rebuild (unseen cubed value): still a bump, never a reset.
  std::vector<Value> row(table_->schema().num_fields());
  row[0] = Value("CMT");
  row[1] = Value("Mon");
  row[2] = Value("1");
  row[3] = Value("Crypto");  // unseen payment type
  row[4] = Value("Standard");
  row[5] = Value("N");
  row[6] = Value("Mon");
  row[7] = Value("[0,5)");
  row[8] = Value(1.0);
  row[9] = Value(10.0);
  row[10] = Value(0.0);
  row[11] = Value(0.5);
  row[12] = Value(0.5);
  ASSERT_TRUE(table_->AppendRow(row).ok());
  Tabula::RefreshStats stats;
  ASSERT_TRUE(tabula.value()->Refresh(&stats).ok());
  ASSERT_TRUE(stats.full_rebuild);
  EXPECT_GT(tabula.value()->generation(), g1);
}

TEST_F(RefreshTest, RefreshListenerLifecycle) {
  auto tabula = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(tabula.ok());

  int fired = 0;
  uint64_t id = tabula.value()->AddRefreshListener([&] { ++fired; });

  AppendRows(table_.get(), *extra_, 500);
  ASSERT_TRUE(tabula.value()->Refresh().ok());
  EXPECT_EQ(fired, 1);

  // After removal the listener never fires again, even though the
  // refresh succeeds and bumps the generation.
  tabula.value()->RemoveRefreshListener(id);
  const uint64_t gen_before = tabula.value()->generation();
  AppendRows(table_.get(), *extra_, 500);
  ASSERT_TRUE(tabula.value()->Refresh().ok());
  EXPECT_EQ(fired, 1);
  EXPECT_GT(tabula.value()->generation(), gen_before);

  // Removing an already-removed (or never-issued) id is harmless.
  tabula.value()->RemoveRefreshListener(id);
  tabula.value()->RemoveRefreshListener(987654321u);
}

TEST_F(RefreshTest, ListenerRegisteredBetweenRefreshesSeesOnlyLaterOnes) {
  auto tabula = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(tabula.ok());

  AppendRows(table_.get(), *extra_, 500);
  ASSERT_TRUE(tabula.value()->Refresh().ok());

  int fired = 0;
  tabula.value()->AddRefreshListener([&] { ++fired; });
  EXPECT_EQ(fired, 0);  // registration alone fires nothing

  AppendRows(table_.get(), *extra_, 500);
  ASSERT_TRUE(tabula.value()->Refresh().ok());
  EXPECT_EQ(fired, 1);
}

TEST_F(RefreshTest, RefreshIsCheaperThanReinitialize) {
  auto tabula = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(tabula.ok());
  AppendRows(table_.get(), *extra_, 1000);

  Stopwatch refresh_timer;
  Tabula::RefreshStats stats;
  ASSERT_TRUE(tabula.value()->Refresh(&stats).ok());
  double refresh_ms = refresh_timer.ElapsedMillis();

  Stopwatch init_timer;
  auto fresh = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(fresh.ok());
  double init_ms = init_timer.ElapsedMillis();
  // Not a strict inequality guarantee in theory, but with selection in
  // the init path it holds by a wide margin in practice.
  EXPECT_LT(refresh_ms, init_ms);
}

}  // namespace
}  // namespace tabula

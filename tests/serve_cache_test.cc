#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/result_cache.h"
#include "testing/fault_injection.h"

namespace tabula {
namespace {

PredicateTerm Eq(const std::string& column, Value literal) {
  return {column, CompareOp::kEq, std::move(literal)};
}

/// A fake answer whose cached footprint is controlled by the number of
/// sample row ids (the cache never dereferences the table pointer).
std::shared_ptr<const TabulaQueryResult> FakeResult(size_t sample_rows) {
  auto result = std::make_shared<TabulaQueryResult>();
  std::vector<RowId> rows(sample_rows);
  for (size_t i = 0; i < sample_rows; ++i) rows[i] = static_cast<RowId>(i);
  result->sample = DatasetView(nullptr, std::move(rows));
  return result;
}

TEST(PredicateKeyTest, OrderInsensitive) {
  std::vector<PredicateTerm> ab = {Eq("a", Value("x")), Eq("b", Value("y"))};
  std::vector<PredicateTerm> ba = {Eq("b", Value("y")), Eq("a", Value("x"))};
  EXPECT_EQ(CanonicalPredicateKey(ab), CanonicalPredicateKey(ba));
}

TEST(PredicateKeyTest, DuplicateInsensitive) {
  std::vector<PredicateTerm> once = {Eq("a", Value("x"))};
  std::vector<PredicateTerm> twice = {Eq("a", Value("x")),
                                      Eq("a", Value("x"))};
  EXPECT_EQ(CanonicalPredicateKey(once), CanonicalPredicateKey(twice));

  auto canonical = CanonicalizeTerms(twice);
  ASSERT_EQ(canonical.size(), 1u);
  EXPECT_EQ(canonical[0].column, "a");
}

TEST(PredicateKeyTest, DistinctPredicatesDistinctKeys) {
  EXPECT_NE(CanonicalPredicateKey({Eq("a", Value("x"))}),
            CanonicalPredicateKey({Eq("a", Value("y"))}));
  EXPECT_NE(CanonicalPredicateKey({Eq("a", Value("x"))}),
            CanonicalPredicateKey({Eq("b", Value("x"))}));
  // Conflicting duplicates on one column stay two terms (they are a
  // different — contradictory — predicate set, not a repetition).
  EXPECT_NE(
      CanonicalPredicateKey({Eq("a", Value("x"))}),
      CanonicalPredicateKey({Eq("a", Value("x")), Eq("a", Value("y"))}));
  // Type-tagged literals: int64 7 vs string "7" vs double 7.0.
  EXPECT_NE(CanonicalPredicateKey({Eq("a", Value(int64_t{7}))}),
            CanonicalPredicateKey({Eq("a", Value("7"))}));
  EXPECT_NE(CanonicalPredicateKey({Eq("a", Value(int64_t{7}))}),
            CanonicalPredicateKey({Eq("a", Value(7.0))}));
  // Length-prefixed fields: ("ab","c") must not equal ("a","bc").
  EXPECT_NE(CanonicalPredicateKey({Eq("ab", Value("c"))}),
            CanonicalPredicateKey({Eq("a", Value("bc"))}));
}

TEST(PredicateKeyTest, EmptyPredicateHasStableKey) {
  EXPECT_EQ(CanonicalPredicateKey({}), CanonicalPredicateKey({}));
  EXPECT_NE(CanonicalPredicateKey({}),
            CanonicalPredicateKey({Eq("a", Value("x"))}));
}

class ResultCacheTest : public ::testing::Test {
 protected:
  /// Single-shard cache sized to hold exactly `capacity` of our
  /// fixed-size entries, so eviction boundaries are deterministic.
  void MakeCache(size_t capacity) {
    auto probe = FakeResult(kSampleRows);
    uint64_t per_entry = ResultCache::EntryBytes(Key("k0"), *probe);
    ResultCacheOptions options;
    options.num_shards = 1;
    options.max_bytes = per_entry * capacity;
    cache_ = std::make_unique<ResultCache>(options);
  }

  static std::string Key(const std::string& name) {
    return CanonicalPredicateKey({Eq("col0", Value(name))});
  }

  void Put(const std::string& name) {
    cache_->Put(Key(name), FakeResult(kSampleRows), cache_->generation());
  }

  bool Contains(const std::string& name) {
    return cache_->Get(Key(name)) != nullptr;
  }

  /// Two-char names keep every key the same length, hence every entry
  /// the same size.
  static constexpr size_t kSampleRows = 100;
  std::unique_ptr<ResultCache> cache_;
};

TEST_F(ResultCacheTest, HitReturnsSameResultObject) {
  MakeCache(4);
  auto result = FakeResult(kSampleRows);
  cache_->Put(Key("k1"), result, cache_->generation());
  auto hit = cache_->Get(Key("k1"));
  EXPECT_EQ(hit.get(), result.get());
  EXPECT_EQ(cache_->Stats().hits, 1u);
}

TEST_F(ResultCacheTest, EvictsLeastRecentlyUsedFirst) {
  MakeCache(3);
  Put("k1");
  Put("k2");
  Put("k3");
  // Freshen k1; k2 becomes the LRU victim.
  EXPECT_TRUE(Contains("k1"));
  Put("k4");
  EXPECT_FALSE(Contains("k2"));
  EXPECT_TRUE(Contains("k1"));
  EXPECT_TRUE(Contains("k3"));
  EXPECT_TRUE(Contains("k4"));
  EXPECT_GE(cache_->Stats().evictions, 1u);
}

TEST_F(ResultCacheTest, ByteBudgetIsEnforced) {
  MakeCache(3);
  for (int i = 0; i < 10; ++i) Put("e" + std::to_string(i));
  ResultCacheStats stats = cache_->Stats();
  EXPECT_LE(stats.entries, 3u);
  uint64_t per_entry =
      ResultCache::EntryBytes(Key("e0"), *FakeResult(kSampleRows));
  EXPECT_LE(stats.bytes_used, per_entry * 3);
  EXPECT_EQ(stats.evictions, 7u);
}

TEST_F(ResultCacheTest, OversizedEntryIsNotCached) {
  MakeCache(2);
  cache_->Put(Key("k1"), FakeResult(kSampleRows * 10), cache_->generation());
  EXPECT_EQ(cache_->Stats().entries, 0u);
  // And it did not evict anything that was already resident.
  Put("k2");
  cache_->Put(Key("k3"), FakeResult(kSampleRows * 10), cache_->generation());
  EXPECT_TRUE(Contains("k2"));
}

TEST_F(ResultCacheTest, InvalidateAllFencesEveryEntry) {
  MakeCache(4);
  Put("k1");
  Put("k2");
  ASSERT_TRUE(Contains("k1"));
  cache_->InvalidateAll();
  EXPECT_FALSE(Contains("k1"));
  EXPECT_FALSE(Contains("k2"));
  EXPECT_EQ(cache_->Stats().invalidated, 2u);
  // Fresh inserts under the new generation serve normally again.
  Put("k1");
  EXPECT_TRUE(Contains("k1"));
}

TEST_F(ResultCacheTest, GetRacingInvalidateAllNeverServesFencedEntry) {
  // Regression: Get() used to load generation() BEFORE taking the shard
  // lock. An InvalidateAll() landing between the load and the lookup
  // then matched the fenced entry against the pre-bump generation and
  // served a stale answer. The "cache.get" delay seam widens exactly
  // that window so the race is deterministic, not schedule-dependent.
  MakeCache(4);
  ScopedFaultClear clear;
  Put("k1");
  ASSERT_TRUE(Contains("k1"));

  FaultSpec delay;
  delay.fail = false;
  delay.delay_ms = 50.0;
  FaultInjector::Global().Arm("cache.get", delay);

  std::shared_ptr<const TabulaQueryResult> raced;
  std::thread reader([&] { raced = cache_->Get(Key("k1")); });
  // Land the invalidation squarely inside the reader's 50 ms window.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  cache_->InvalidateAll();
  reader.join();

  EXPECT_EQ(raced, nullptr)
      << "Get returned an entry fenced by a concurrent InvalidateAll";
  FaultInjector::Global().DisarmAll();
  EXPECT_FALSE(Contains("k1"));
}

TEST_F(ResultCacheTest, StaleGenerationPutIsIgnored) {
  MakeCache(4);
  // A writer captured the generation, then a refresh fenced the cache
  // before its Put landed: the stale answer must never become servable.
  uint64_t stale = cache_->generation();
  cache_->InvalidateAll();
  cache_->Put(Key("k1"), FakeResult(kSampleRows), stale);
  EXPECT_FALSE(Contains("k1"));
}

TEST_F(ResultCacheTest, StatsTrackHitRate) {
  MakeCache(4);
  Put("k1");
  EXPECT_TRUE(Contains("k1"));
  EXPECT_FALSE(Contains("k9"));
  ResultCacheStats stats = cache_->Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(ResultCacheShardedTest, EntriesSpreadAcrossShards) {
  ResultCacheOptions options;
  options.num_shards = 8;
  options.max_bytes = 1ull << 20;
  ResultCache cache(options);
  for (int i = 0; i < 64; ++i) {
    std::string key = CanonicalPredicateKey(
        {Eq("col", Value("v" + std::to_string(i)))});
    cache.Put(key, FakeResult(10), cache.generation());
  }
  EXPECT_EQ(cache.Stats().entries, 64u);
  for (int i = 0; i < 64; ++i) {
    std::string key = CanonicalPredicateKey(
        {Eq("col", Value("v" + std::to_string(i)))});
    EXPECT_NE(cache.Get(key), nullptr) << key;
  }
}

}  // namespace
}  // namespace tabula

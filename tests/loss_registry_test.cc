#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "core/tabula.h"
#include "data/taxi_gen.h"
#include "loss/loss_registry.h"

namespace tabula {
namespace {

TEST(LossRegistryTest, BuiltinsConstruct) {
  struct Case {
    std::string name;
    LossParams params;
  };
  const Case cases[] = {
      {"mean_loss", {.columns = {"fare_amount"}}},
      {"heatmap_loss", {.columns = {"pickup_x", "pickup_y"}}},
      {"histogram_loss", {.columns = {"fare_amount"}}},
      {"regression_loss", {.columns = {"fare_amount", "tip_amount"}}},
      {"topk_loss", {.columns = {"fare_amount"}, .k = 5}},
  };
  for (const auto& c : cases) {
    auto loss = MakeLossFunction(c.name, c.params);
    ASSERT_TRUE(loss.ok()) << c.name << ": " << loss.status().ToString();
    EXPECT_NE(loss.value(), nullptr) << c.name;
  }
}

TEST(LossRegistryTest, NamesAreCaseInsensitive) {
  EXPECT_TRUE(IsRegisteredLossName("mean_loss"));
  EXPECT_TRUE(IsRegisteredLossName("MEAN_LOSS"));
  EXPECT_TRUE(IsRegisteredLossName("Heatmap_Loss"));
  EXPECT_FALSE(IsRegisteredLossName("definitely_not_a_loss"));
  auto loss = MakeLossFunction("Mean_Loss", {.columns = {"fare_amount"}});
  EXPECT_TRUE(loss.ok());
}

TEST(LossRegistryTest, UnknownNameIsInvalidArgumentNamingKnownSet) {
  auto loss = MakeLossFunction("no_such_loss", {.columns = {"x"}});
  ASSERT_FALSE(loss.ok());
  EXPECT_EQ(loss.status().code(), StatusCode::kInvalidArgument);
  // The message names the offender and the registered set.
  EXPECT_NE(loss.status().ToString().find("no_such_loss"),
            std::string::npos);
  EXPECT_NE(loss.status().ToString().find("mean_loss"), std::string::npos);
}

TEST(LossRegistryTest, WrongColumnCountIsInvalidArgument) {
  // mean_loss wants exactly one column.
  EXPECT_EQ(MakeLossFunction("mean_loss", {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeLossFunction("mean_loss", {.columns = {"a", "b"}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // heatmap_loss wants exactly two.
  EXPECT_EQ(MakeLossFunction("heatmap_loss", {.columns = {"only_x"}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // regression_loss wants exactly two.
  EXPECT_EQ(MakeLossFunction("regression_loss",
                             {.columns = {"a", "b", "c"}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(LossRegistryTest, RegisteredNamesAreSortedAndContainBuiltins) {
  auto names = RegisteredLossNames();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* builtin :
       {"heatmap_loss", "histogram_loss", "mean_loss", "regression_loss",
        "topk_loss"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), builtin), names.end())
        << builtin;
  }
}

TEST(LossRegistryTest, CustomFactoryRegistersOnceAndResolves) {
  const std::string name = "registry_test_custom_loss";
  if (!IsRegisteredLossName(name)) {
    ASSERT_TRUE(RegisterLossFactory(name, [](const LossParams& params) {
                  return MakeLossFunction("mean_loss", params);
                }).ok());
  }
  EXPECT_TRUE(IsRegisteredLossName(name));
  auto loss = MakeLossFunction(name, {.columns = {"fare_amount"}});
  ASSERT_TRUE(loss.ok());
  // Re-registering the same (case-insensitive) name fails.
  Status dup = RegisterLossFactory(
      "Registry_Test_Custom_Loss",
      [](const LossParams&) -> Result<std::unique_ptr<LossFunction>> {
        return Status::Internal("unreachable");
      });
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST(LossRegistryTest, BuiltinCannotBeShadowed) {
  Status dup = RegisterLossFactory(
      "mean_loss",
      [](const LossParams&) -> Result<std::unique_ptr<LossFunction>> {
        return Status::Internal("unreachable");
      });
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST(LossRegistryTest, OwnedLossDrivesTabulaEndToEnd) {
  TaxiGeneratorOptions gen;
  gen.num_rows = 5000;
  gen.seed = 77;
  auto table = TaxiGenerator(gen).Generate();

  auto loss = MakeLossFunction("mean_loss", {.columns = {"fare_amount"}});
  ASSERT_TRUE(loss.ok());

  TabulaOptions options;
  options.cubed_attributes = {"payment_type"};
  options.owned_loss = std::move(loss).value();
  options.threshold = 0.10;
  ASSERT_EQ(options.loss, nullptr);  // no raw pointer anywhere
  ASSERT_NE(options.effective_loss(), nullptr);

  auto tabula = Tabula::Initialize(*table, options);
  ASSERT_TRUE(tabula.ok());
  QueryRequest request(
      {{"payment_type", CompareOp::kEq, Value("Cash")}});
  auto answer = tabula.value()->Query(request);
  ASSERT_TRUE(answer.ok());
  EXPECT_GT(answer->result.sample.size(), 0u);
}

}  // namespace
}  // namespace tabula

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "exec/aggregate.h"
#include "exec/group_by.h"
#include "exec/key_encoder.h"
#include "storage/table.h"

namespace tabula {
namespace {

std::unique_ptr<Table> MakeTable() {
  Schema schema({{"a", DataType::kCategorical},
                 {"b", DataType::kCategorical},
                 {"n", DataType::kInt64},
                 {"v", DataType::kDouble}});
  auto table = std::make_unique<Table>(schema);
  auto add = [&](const char* a, const char* b, int64_t n, double v) {
    ASSERT_TRUE(table->AppendRow({Value(a), Value(b), Value(n), Value(v)}).ok());
  };
  add("x", "p", 1, 1.0);
  add("x", "q", 1, 2.0);
  add("y", "p", 2, 3.0);
  add("y", "q", 2, 4.0);
  add("x", "p", 3, 5.0);
  add("y", "p", 1, 6.0);
  return table;
}

TEST(NumericAggStateTest, BasicStats) {
  NumericAggState s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.count, 4.0);
  EXPECT_DOUBLE_EQ(s.sum, 10.0);
  EXPECT_DOUBLE_EQ(s.Avg(), 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.StdDev(), std::sqrt(1.25), 1e-12);
}

TEST(NumericAggStateTest, MergeEqualsDirectAccumulation) {
  NumericAggState a, b, direct;
  for (double v : {1.0, 5.0, 9.0}) {
    a.Add(v);
    direct.Add(v);
  }
  for (double v : {2.0, 4.0}) {
    b.Add(v);
    direct.Add(v);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Avg(), direct.Avg());
  EXPECT_DOUBLE_EQ(a.StdDev(), direct.StdDev());
  EXPECT_DOUBLE_EQ(a.min, direct.min);
  EXPECT_DOUBLE_EQ(a.max, direct.max);
}

TEST(RegressionAggStateTest, PerfectLine) {
  RegressionAggState s;
  for (double x : {0.0, 1.0, 2.0, 3.0}) s.Add(x, 2.0 * x + 1.0);
  EXPECT_NEAR(s.Slope(), 2.0, 1e-12);
  EXPECT_NEAR(s.Intercept(), 1.0, 1e-12);
  EXPECT_NEAR(s.AngleDegrees(), std::atan(2.0) * 180.0 / M_PI, 1e-12);
}

TEST(RegressionAggStateTest, MergeMatchesDirect) {
  RegressionAggState a, b, direct;
  auto add = [](RegressionAggState* s, double x, double y) { s->Add(x, y); };
  for (int i = 0; i < 5; ++i) {
    add(&a, i, 3.0 * i - 2.0 + (i % 2));
    add(&direct, i, 3.0 * i - 2.0 + (i % 2));
  }
  for (int i = 5; i < 9; ++i) {
    add(&b, i, 3.0 * i - 2.0);
    add(&direct, i, 3.0 * i - 2.0);
  }
  a.Merge(b);
  EXPECT_NEAR(a.Slope(), direct.Slope(), 1e-12);
}

TEST(RegressionAggStateTest, DegenerateSlopeIsZero) {
  RegressionAggState s;
  s.Add(1.0, 5.0);
  s.Add(1.0, 9.0);  // vertical: undefined slope
  EXPECT_DOUBLE_EQ(s.Slope(), 0.0);
  RegressionAggState empty;
  EXPECT_DOUBLE_EQ(empty.Slope(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Intercept(), 0.0);
}

TEST(KeyEncoderTest, CategoricalAndIntColumns) {
  auto table = MakeTable();
  auto enc = KeyEncoder::Make(*table, {"a", "n"});
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->num_columns(), 2u);
  EXPECT_EQ(enc->Cardinality(0), 2u);  // x, y
  EXPECT_EQ(enc->Cardinality(1), 3u);  // 1, 2, 3
  // Row 2 is ("y", ..., 2, ...).
  EXPECT_EQ(enc->Decode(0, enc->Encode(0, 2)).AsString(), "y");
  EXPECT_EQ(enc->Decode(1, enc->Encode(1, 2)).AsInt64(), 2);
  EXPECT_TRUE(enc->Decode(0, kNullCode).is_null());
}

TEST(KeyEncoderTest, CodeForValueRoundTrip) {
  auto table = MakeTable();
  auto enc = KeyEncoder::Make(*table, {"a", "n"});
  ASSERT_TRUE(enc.ok());
  auto code = enc->CodeForValue(0, Value("y"));
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(enc->Decode(0, code.value()).AsString(), "y");
  EXPECT_FALSE(enc->CodeForValue(0, Value("zzz")).ok());
  EXPECT_FALSE(enc->CodeForValue(1, Value(int64_t{42})).ok());
}

TEST(KeyEncoderTest, RejectsDoubleColumns) {
  auto table = MakeTable();
  EXPECT_FALSE(KeyEncoder::Make(*table, {"v"}).ok());
}

TEST(KeyEncoderTest, KeySpaceSize) {
  auto table = MakeTable();
  auto enc = KeyEncoder::Make(*table, {"a", "b", "n"});
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->KeySpaceSize(), 2u * 2u * 3u);
}

TEST(KeyPackerTest, PackUnpackWithNulls) {
  auto table = MakeTable();
  auto enc = KeyEncoder::Make(*table, {"a", "b", "n"});
  ASSERT_TRUE(enc.ok());
  auto packer = KeyPacker::Make(*enc, {0, 1, 2});
  ASSERT_TRUE(packer.ok());

  std::vector<uint32_t> codes{1, kNullCode, 2};
  uint64_t key = packer->PackCodes(codes);
  EXPECT_EQ(packer->Unpack(key), codes);
  EXPECT_EQ(packer->CodeAt(key, 1), kNullCode);

  uint64_t rolled = packer->WithNull(key, 0);
  auto rolled_codes = packer->Unpack(rolled);
  EXPECT_EQ(rolled_codes[0], kNullCode);
  EXPECT_EQ(rolled_codes[2], 2u);
}

TEST(KeyPackerTest, PackRowMatchesPackCodes) {
  auto table = MakeTable();
  auto enc = KeyEncoder::Make(*table, {"a", "b"});
  ASSERT_TRUE(enc.ok());
  auto packer = KeyPacker::Make(*enc, {0, 1});
  ASSERT_TRUE(packer.ok());
  for (RowId r = 0; r < table->num_rows(); ++r) {
    std::vector<uint32_t> codes{enc->Encode(0, r), enc->Encode(1, r)};
    EXPECT_EQ(packer->PackRow(*enc, r), packer->PackCodes(codes));
  }
}

TEST(KeyPackerTest, PackRowsMatchesPackRow) {
  // The columnar bulk packer must produce exactly what the per-row
  // packer does, including on subset views and partial [begin, end)
  // ranges (out[i] is indexed by view position, not row id).
  auto table = MakeTable();
  auto enc = KeyEncoder::Make(*table, {"a", "b", "n"});
  ASSERT_TRUE(enc.ok());
  auto packer = KeyPacker::Make(*enc, {0, 1, 2});
  ASSERT_TRUE(packer.ok());
  DatasetView view(table.get(), {5, 2, 0, 3});
  std::vector<uint64_t> bulk(view.size(), ~uint64_t{0});
  packer->PackRows(*enc, view, 1, 3, bulk.data());
  for (size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(bulk[i], packer->PackRow(*enc, view.row(i))) << "pos " << i;
  }
  EXPECT_EQ(bulk[0], ~uint64_t{0});  // outside the range: untouched
  EXPECT_EQ(bulk[3], ~uint64_t{0});
}

TEST(KeyPackerTest, PackRowMaskedRollsUp) {
  auto table = MakeTable();
  auto enc = KeyEncoder::Make(*table, {"a", "b"});
  ASSERT_TRUE(enc.ok());
  auto packer = KeyPacker::Make(*enc, {0, 1});
  ASSERT_TRUE(packer.ok());
  // Mask keeps only column 0; column 1 must be '*'.
  uint64_t key = packer->PackRowMasked(*enc, 0, 0b01);
  auto codes = packer->Unpack(key);
  EXPECT_EQ(codes[0], enc->Encode(0, 0));
  EXPECT_EQ(codes[1], kNullCode);
}

TEST(GroupByTest, GroupRowsPartitionsTable) {
  auto table = MakeTable();
  auto enc = KeyEncoder::Make(*table, {"a"});
  ASSERT_TRUE(enc.ok());
  auto packer = KeyPacker::Make(*enc, {0});
  ASSERT_TRUE(packer.ok());
  GroupedRows groups = GroupRows(*enc, *packer, DatasetView(table.get()));
  ASSERT_EQ(groups.keys.size(), 2u);
  size_t total = 0;
  std::set<RowId> seen;
  for (const auto& rows : groups.rows) {
    total += rows.size();
    seen.insert(rows.begin(), rows.end());
  }
  EXPECT_EQ(total, 6u);
  EXPECT_EQ(seen.size(), 6u);
}

TEST(GroupByTest, GroupAccumulateMatchesManualAggregation) {
  auto table = MakeTable();
  auto enc = KeyEncoder::Make(*table, {"b"});
  ASSERT_TRUE(enc.ok());
  auto packer = KeyPacker::Make(*enc, {0});
  ASSERT_TRUE(packer.ok());
  const auto* v = table->column(3).As<DoubleColumn>();
  auto map = GroupAccumulate<NumericAggState>(
      *enc, *packer, DatasetView(table.get()),
      [&](NumericAggState* s, RowId r) { s->Add(v->At(r)); });
  ASSERT_EQ(map.size(), 2u);
  // Group p: rows 0,2,4,5 → values 1,3,5,6. Group q: rows 1,3 → 2,4.
  double sum_p = 0.0, sum_q = 0.0;
  map.ForEach([&](uint64_t key, const NumericAggState& state) {
    uint32_t code = packer->CodeAt(key, 0);
    if (enc->Decode(0, code).AsString() == "p") {
      sum_p = state.sum;
    } else {
      sum_q = state.sum;
    }
  });
  EXPECT_DOUBLE_EQ(sum_p, 15.0);
  EXPECT_DOUBLE_EQ(sum_q, 6.0);
}

TEST(GroupByTest, GroupAccumulateSortedMatchesHashEngine) {
  // The dense-array engine must agree with the hash-map engine group for
  // group, and emit keys in ascending order — the deterministic-output
  // contract the dry run builds on.
  auto table = MakeTable();
  auto enc = KeyEncoder::Make(*table, {"a", "b"});
  ASSERT_TRUE(enc.ok());
  auto packer = KeyPacker::Make(*enc, {0, 1});
  ASSERT_TRUE(packer.ok());
  const auto* v = table->column(3).As<DoubleColumn>();
  auto add = [&](NumericAggState* s, RowId r) { s->Add(v->At(r)); };
  DatasetView view(table.get());
  auto map = GroupAccumulate<NumericAggState>(*enc, *packer, view, add);
  GroupedStates<NumericAggState> dense =
      GroupAccumulateSorted<NumericAggState>(*enc, *packer, view, add);

  ASSERT_EQ(dense.keys.size(), map.size());
  ASSERT_EQ(dense.states.size(), dense.keys.size());
  EXPECT_TRUE(std::is_sorted(dense.keys.begin(), dense.keys.end()));
  for (size_t i = 0; i < dense.keys.size(); ++i) {
    const NumericAggState* expected = map.Find(dense.keys[i]);
    ASSERT_NE(expected, nullptr) << "key " << dense.keys[i];
    EXPECT_DOUBLE_EQ(dense.states[i].sum, expected->sum);
    EXPECT_DOUBLE_EQ(dense.states[i].count, expected->count);
  }
}

TEST(GroupByTest, GroupRowsOnSubsetView) {
  auto table = MakeTable();
  auto enc = KeyEncoder::Make(*table, {"a"});
  ASSERT_TRUE(enc.ok());
  auto packer = KeyPacker::Make(*enc, {0});
  ASSERT_TRUE(packer.ok());
  DatasetView view(table.get(), {0, 1, 4});  // all "x" rows
  GroupedRows groups = GroupRows(*enc, *packer, view);
  ASSERT_EQ(groups.keys.size(), 1u);
  EXPECT_EQ(groups.rows[0].size(), 3u);
}

}  // namespace
}  // namespace tabula

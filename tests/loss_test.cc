#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "loss/mean_loss.h"
#include "loss/min_dist_loss.h"
#include "loss/regression_loss.h"
#include "loss/spatial.h"
#include "storage/table.h"

namespace tabula {
namespace {

std::unique_ptr<Table> PointsTable(const std::vector<Point>& pts,
                                   const std::vector<double>& vals = {}) {
  Schema schema({{"x", DataType::kDouble},
                 {"y", DataType::kDouble},
                 {"v", DataType::kDouble}});
  auto table = std::make_unique<Table>(schema);
  for (size_t i = 0; i < pts.size(); ++i) {
    double v = i < vals.size() ? vals[i] : 0.0;
    EXPECT_TRUE(
        table->AppendRow({Value(pts[i].x), Value(pts[i].y), Value(v)}).ok());
  }
  return table;
}

// ---------- PointGrid ----------

TEST(PointGridTest, ExactNearestOnRandomPoints) {
  Rng rng(5);
  std::vector<Point> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.UniformDouble(0, 1), rng.UniformDouble(0, 1)});
  }
  PointGrid grid(pts, DistanceMetric::kEuclidean);
  for (int q = 0; q < 200; ++q) {
    Point query{rng.UniformDouble(-0.2, 1.2), rng.UniformDouble(-0.2, 1.2)};
    double brute = kInfiniteLoss;
    for (const auto& p : pts) {
      brute = std::min(brute,
                       Distance(DistanceMetric::kEuclidean, query, p));
    }
    EXPECT_NEAR(grid.NearestDistance(query), brute, 1e-12);
  }
}

TEST(PointGridTest, ManhattanMetric) {
  std::vector<Point> pts{{0.0, 0.0}, {1.0, 1.0}};
  PointGrid grid(pts, DistanceMetric::kManhattan);
  EXPECT_NEAR(grid.NearestDistance({0.2, 0.1}), 0.3, 1e-12);
}

TEST(PointGridTest, SinglePoint) {
  PointGrid grid({{0.5, 0.5}}, DistanceMetric::kEuclidean);
  EXPECT_NEAR(grid.NearestDistance({0.5, 0.9}), 0.4, 1e-12);
}

TEST(PointGridTest, DegenerateColinearPoints) {
  // All points on one horizontal line: the grid's y extent is zero.
  std::vector<Point> pts;
  for (int i = 0; i < 10; ++i) pts.push_back({i * 0.1, 0.0});
  PointGrid grid(pts, DistanceMetric::kEuclidean);
  EXPECT_NEAR(grid.NearestDistance({0.55, 0.0}), 0.05, 1e-12);
  EXPECT_NEAR(grid.NearestDistance({0.3, 1.0}), 1.0, 1e-12);
}

// ---------- MeanLoss ----------

TEST(MeanLossTest, FormulaMatchesPaperFunction1) {
  // loss = ABS((AVG(Raw) - AVG(Sam)) / AVG(Raw))
  EXPECT_DOUBLE_EQ(MeanLoss::RelativeMeanError(10.0, 9.0, false), 0.1);
  EXPECT_DOUBLE_EQ(MeanLoss::RelativeMeanError(10.0, 11.0, false), 0.1);
  EXPECT_DOUBLE_EQ(MeanLoss::RelativeMeanError(10.0, 10.0, false), 0.0);
  EXPECT_EQ(MeanLoss::RelativeMeanError(10.0, 10.0, true), kInfiniteLoss);
}

TEST(MeanLossTest, DirectLoss) {
  auto table = PointsTable({{0, 0}, {0, 0}, {0, 0}, {0, 0}},
                           {10.0, 20.0, 30.0, 40.0});
  MeanLoss loss("v");
  DatasetView raw(table.get());
  DatasetView sample(table.get(), {0, 3});  // avg 25 == raw avg 25
  auto result = loss.Loss(raw, sample);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value(), 0.0);

  DatasetView biased(table.get(), {0});  // avg 10 vs 25 → 0.6
  EXPECT_DOUBLE_EQ(loss.Loss(raw, biased).value(), 0.6);
}

TEST(MeanLossTest, BoundAccumulatorMatchesDirect) {
  auto table = PointsTable({{0, 0}, {0, 0}, {0, 0}, {0, 0}, {0, 0}},
                           {5.0, 15.0, 25.0, 35.0, 45.0});
  MeanLoss loss("v");
  DatasetView ref(table.get(), {1, 3});  // the "sample" side
  auto bound = loss.Bind(*table, ref);
  ASSERT_TRUE(bound.ok());
  LossState state;
  for (RowId r : {0u, 2u, 4u}) bound.value()->Accumulate(&state, r);
  DatasetView raw(table.get(), {0, 2, 4});
  EXPECT_NEAR(bound.value()->Finalize(state), loss.Loss(raw, ref).value(),
              1e-12);
}

TEST(MeanLossTest, StateMergeEqualsSinglePass) {
  auto table = PointsTable({{0, 0}, {0, 0}, {0, 0}, {0, 0}},
                           {1.0, 2.0, 3.0, 4.0});
  MeanLoss loss("v");
  DatasetView ref(table.get(), {0});
  auto bound = loss.Bind(*table, ref);
  ASSERT_TRUE(bound.ok());
  LossState a, b, whole;
  bound.value()->Accumulate(&a, 0);
  bound.value()->Accumulate(&a, 1);
  bound.value()->Accumulate(&b, 2);
  bound.value()->Accumulate(&b, 3);
  for (RowId r = 0; r < 4; ++r) bound.value()->Accumulate(&whole, r);
  a.Merge(b);
  EXPECT_NEAR(bound.value()->Finalize(a), bound.value()->Finalize(whole),
              1e-12);
}

TEST(MeanLossTest, RejectsNonNumericTarget) {
  Schema schema({{"c", DataType::kCategorical}});
  Table table(schema);
  ASSERT_TRUE(table.AppendRow({Value("a")}).ok());
  MeanLoss loss("c");
  DatasetView raw(&table);
  EXPECT_FALSE(loss.Loss(raw, raw).ok());
}

// ---------- MinDistLoss (heat map / histogram) ----------

TEST(MinDistLossTest, LossIsAverageMinDistance) {
  auto table = PointsTable({{0, 0}, {1, 0}, {0, 1}, {1, 1}});
  auto loss = MakeHeatmapLoss("x", "y");
  DatasetView raw(table.get());
  DatasetView sample(table.get(), {0});
  // Distances from each raw point to (0,0): 0, 1, 1, sqrt(2).
  auto result = loss->Loss(raw, sample);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value(), (0 + 1 + 1 + std::sqrt(2.0)) / 4.0, 1e-12);
}

TEST(MinDistLossTest, FullSampleHasZeroLoss) {
  auto table = PointsTable({{0.1, 0.9}, {0.4, 0.3}, {0.8, 0.2}});
  auto loss = MakeHeatmapLoss("x", "y");
  DatasetView raw(table.get());
  EXPECT_DOUBLE_EQ(loss->Loss(raw, raw).value(), 0.0);
}

TEST(MinDistLossTest, EmptySampleHasInfiniteLoss) {
  auto table = PointsTable({{0.1, 0.9}});
  auto loss = MakeHeatmapLoss("x", "y");
  DatasetView raw(table.get());
  DatasetView empty(table.get(), {});
  EXPECT_EQ(loss->Loss(raw, empty).value(), kInfiniteLoss);
}

TEST(MinDistLossTest, BoundAccumulatorMatchesDirect) {
  Rng rng(11);
  std::vector<Point> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({rng.UniformDouble(0, 1), rng.UniformDouble(0, 1)});
  }
  auto table = PointsTable(pts);
  auto loss = MakeHeatmapLoss("x", "y");
  std::vector<RowId> sample_rows{3, 50, 120, 250};
  DatasetView ref(table.get(), sample_rows);
  auto bound = loss->Bind(*table, ref);
  ASSERT_TRUE(bound.ok());
  LossState state;
  for (RowId r = 0; r < 300; ++r) bound.value()->Accumulate(&state, r);
  DatasetView raw(table.get());
  EXPECT_NEAR(bound.value()->Finalize(state), loss->Loss(raw, ref).value(),
              1e-9);
}

TEST(MinDistLossTest, HistogramLossIs1D) {
  // 1-D loss over v: raw {0, 10}, sample {0} → avg min dist = 5.
  auto table = PointsTable({{0, 0}, {0, 0}}, {0.0, 10.0});
  auto loss = MakeHistogramLoss("v");
  DatasetView raw(table.get());
  DatasetView sample(table.get(), {0});
  EXPECT_NEAR(loss->Loss(raw, sample).value(), 5.0, 1e-12);
}

TEST(MinDistLossTest, GreedyEvaluatorTracksLoss) {
  auto table = PointsTable({{0, 0}, {1, 0}, {0.5, 0}});
  auto loss = MakeHeatmapLoss("x", "y");
  DatasetView raw(table.get());
  auto eval = loss->MakeGreedyEvaluator(raw);
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval.value()->CurrentLoss(), kInfiniteLoss);
  // Adding the middle point: distances 0.5, 0.5, 0 → loss 1/3.
  EXPECT_NEAR(eval.value()->LossWithCandidate(2), 1.0 / 3.0, 1e-12);
  eval.value()->Add(2);
  EXPECT_NEAR(eval.value()->CurrentLoss(), 1.0 / 3.0, 1e-12);
  // Then adding (0,0): distances 0, 0.5, 0 → 1/6.
  EXPECT_NEAR(eval.value()->LossWithCandidate(0), 1.0 / 6.0, 1e-12);
}

TEST(MinDistLossTest, GreedyGainIsSubmodular) {
  // gain(c | S) must not increase as S grows.
  Rng rng(3);
  std::vector<Point> pts;
  for (int i = 0; i < 60; ++i) {
    pts.push_back({rng.UniformDouble(0, 1), rng.UniformDouble(0, 1)});
  }
  auto table = PointsTable(pts);
  auto loss = MakeHeatmapLoss("x", "y");
  ASSERT_TRUE(loss->SubmodularGain());
  DatasetView raw(table.get());
  auto eval = loss->MakeGreedyEvaluator(raw);
  ASSERT_TRUE(eval.ok());
  size_t probe = 42;
  double prev_gain = kInfiniteLoss;
  for (size_t add : {0u, 10u, 20u, 30u}) {
    double gain =
        eval.value()->InternalLoss() - eval.value()->LossWithCandidate(probe);
    EXPECT_LE(gain, prev_gain + 1e-12);
    prev_gain = gain;
    eval.value()->Add(add);
  }
}

// ---------- RegressionLoss ----------

TEST(RegressionLossTest, AngleDifference) {
  // Raw: slope 1 (45°); sample rows on slope 0 (0°) → loss 45.
  Schema schema({{"x", DataType::kDouble}, {"y", DataType::kDouble}});
  Table table(schema);
  // Raw points on y = x.
  for (double x : {0.0, 1.0, 2.0, 3.0}) {
    ASSERT_TRUE(table.AppendRow({Value(x), Value(x)}).ok());
  }
  // Two extra points on y = 2 (slope 0).
  ASSERT_TRUE(table.AppendRow({Value(0.0), Value(2.0)}).ok());
  ASSERT_TRUE(table.AppendRow({Value(4.0), Value(2.0)}).ok());

  RegressionLoss loss("x", "y");
  DatasetView raw(&table, {0, 1, 2, 3});
  DatasetView sample(&table, {4, 5});
  EXPECT_NEAR(loss.Loss(raw, sample).value(), 45.0, 1e-9);
  EXPECT_NEAR(loss.Loss(raw, raw).value(), 0.0, 1e-12);
}

TEST(RegressionLossTest, BoundAccumulatorMatchesDirect) {
  Schema schema({{"x", DataType::kDouble}, {"y", DataType::kDouble}});
  Table table(schema);
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    double x = rng.UniformDouble(0, 10);
    ASSERT_TRUE(
        table.AppendRow({Value(x), Value(2.0 * x + rng.Normal(0, 1))}).ok());
  }
  RegressionLoss loss("x", "y");
  std::vector<RowId> sample_rows{1, 7, 20, 55, 80};
  DatasetView ref(&table, sample_rows);
  auto bound = loss.Bind(table, ref);
  ASSERT_TRUE(bound.ok());
  LossState state;
  for (RowId r = 0; r < 100; ++r) bound.value()->Accumulate(&state, r);
  DatasetView raw(&table);
  EXPECT_NEAR(bound.value()->Finalize(state), loss.Loss(raw, ref).value(),
              1e-9);
}

TEST(RegressionLossTest, GreedyEvaluatorConsistent) {
  Schema schema({{"x", DataType::kDouble}, {"y", DataType::kDouble}});
  Table table(schema);
  for (double x : {0.0, 1.0, 2.0, 3.0, 4.0}) {
    ASSERT_TRUE(table.AppendRow({Value(x), Value(3.0 * x)}).ok());
  }
  RegressionLoss loss("x", "y");
  DatasetView raw(&table);
  auto eval = loss.MakeGreedyEvaluator(raw);
  ASSERT_TRUE(eval.ok());
  // LossWithCandidate must equal direct Loss of that single-tuple sample.
  for (size_t c = 0; c < 5; ++c) {
    DatasetView single(&table, {static_cast<RowId>(c)});
    EXPECT_NEAR(eval.value()->LossWithCandidate(c),
                loss.Loss(raw, single).value(), 1e-9);
  }
}

// ---------- Signatures ----------

TEST(SignatureTest, MeanSignatureIsAverage) {
  auto table = PointsTable({{0, 0}, {0, 0}}, {10.0, 30.0});
  MeanLoss loss("v");
  auto sig = loss.Signature(DatasetView(table.get()));
  ASSERT_EQ(sig.size(), 1u);
  EXPECT_DOUBLE_EQ(sig[0], 20.0);
}

TEST(SignatureTest, HeatmapSignatureIsCentroid) {
  auto table = PointsTable({{0, 0}, {1, 1}});
  auto loss = MakeHeatmapLoss("x", "y");
  auto sig = loss->Signature(DatasetView(table.get()));
  ASSERT_EQ(sig.size(), 2u);
  EXPECT_DOUBLE_EQ(sig[0], 0.5);
  EXPECT_DOUBLE_EQ(sig[1], 0.5);
}

}  // namespace
}  // namespace tabula

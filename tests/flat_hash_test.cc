#include "common/flat_hash.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <vector>

namespace tabula {
namespace {

TEST(FlatHashMapTest, InsertFindBasics) {
  FlatHashMap<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(7u), nullptr);

  auto [v, inserted] = map.TryEmplace(7);
  EXPECT_TRUE(inserted);
  *v = 42;
  EXPECT_EQ(map.size(), 1u);

  auto [again, inserted2] = map.TryEmplace(7);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*again, 42);

  map[9] = 5;
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find(9u), nullptr);
  EXPECT_EQ(*map.Find(9u), 5);
  EXPECT_TRUE(map.contains(7));
  EXPECT_FALSE(map.contains(8));
}

TEST(FlatHashMapTest, KeyZeroIsAValidKey) {
  // Packed key 0 = every attribute at dictionary code 0; the map must
  // not treat it as an empty-slot sentinel.
  FlatHashMap<int> map;
  map[0] = 11;
  EXPECT_TRUE(map.contains(0));
  ASSERT_NE(map.Find(0u), nullptr);
  EXPECT_EQ(*map.Find(0u), 11);
  EXPECT_TRUE(map.Erase(0));
  EXPECT_FALSE(map.contains(0));
  EXPECT_TRUE(map.empty());
}

TEST(FlatHashMapTest, MatchesStdMapUnderRandomChurn) {
  // Differential check vs std::map through a mixed insert/erase/lookup
  // workload — exercises growth, collisions, and backward-shift deletion.
  FlatHashMap<uint64_t> map;
  std::map<uint64_t, uint64_t> oracle;
  std::mt19937_64 rng(20260806);
  for (int step = 0; step < 20000; ++step) {
    uint64_t key = rng() % 512;  // small key space → frequent collisions
    uint64_t op = rng() % 10;
    if (op < 6) {
      uint64_t value = rng();
      map[key] = value;
      oracle[key] = value;
    } else if (op < 8) {
      EXPECT_EQ(map.Erase(key), oracle.erase(key) > 0) << "step " << step;
    } else {
      const uint64_t* found = map.Find(key);
      auto it = oracle.find(key);
      if (it == oracle.end()) {
        EXPECT_EQ(found, nullptr) << "step " << step;
      } else {
        ASSERT_NE(found, nullptr) << "step " << step;
        EXPECT_EQ(*found, it->second) << "step " << step;
      }
    }
  }
  ASSERT_EQ(map.size(), oracle.size());
  // Final full sweep both directions.
  map.ForEach([&](uint64_t key, const uint64_t& value) {
    auto it = oracle.find(key);
    ASSERT_NE(it, oracle.end());
    EXPECT_EQ(value, it->second);
  });
}

TEST(FlatHashMapTest, EraseKeepsProbeRunsReachable) {
  // Craft keys that collide into one probe run, then delete from the
  // middle: backward-shift must keep every survivor reachable.
  FlatHashMap<int> map;
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; keys.size() < 12; ++k) {
    map[k] = static_cast<int>(k);
    keys.push_back(k);
  }
  for (size_t i = 0; i < keys.size(); i += 2) {
    EXPECT_TRUE(map.Erase(keys[i]));
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_FALSE(map.contains(keys[i]));
    } else {
      ASSERT_TRUE(map.contains(keys[i])) << "lost key " << keys[i];
      EXPECT_EQ(*map.Find(keys[i]), static_cast<int>(keys[i]));
    }
  }
}

TEST(FlatHashMapTest, SortedKeysAndExtractSortedAreAscending) {
  FlatHashMap<int> map;
  std::mt19937_64 rng(99);
  std::vector<uint64_t> inserted;
  for (int i = 0; i < 300; ++i) {
    uint64_t key = rng();
    if (map.TryEmplace(key).second) inserted.push_back(key);
    *map.Find(key) = i;
  }
  std::sort(inserted.begin(), inserted.end());

  EXPECT_EQ(map.SortedKeys(), inserted);

  auto entries = map.ExtractSorted();
  ASSERT_EQ(entries.size(), inserted.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].first, inserted[i]);
  }
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.capacity(), 0u);
}

TEST(FlatHashMapTest, ReservePreventsRehash) {
  FlatHashMap<int> map;
  map.reserve(1000);
  size_t cap = map.capacity();
  EXPECT_GE(cap, 1000u);
  for (uint64_t k = 0; k < 1000; ++k) map[k] = 1;
  EXPECT_EQ(map.capacity(), cap) << "reserve(1000) should absorb 1000 inserts";
  EXPECT_EQ(map.size(), 1000u);
}

TEST(FlatHashMapTest, MovesValuesOnExtract) {
  FlatHashMap<std::vector<int>> map;
  map[3].assign(100, 7);
  map[1].assign(50, 9);
  auto entries = map.ExtractSorted();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, 1u);
  EXPECT_EQ(entries[0].second.size(), 50u);
  EXPECT_EQ(entries[1].first, 3u);
  EXPECT_EQ(entries[1].second.size(), 100u);
}

TEST(FlatHashMapTest, TryEmplaceWithValueConstructsOnce) {
  // The value overload must move the argument straight into the slot on
  // insert (no default-construct-then-assign) and leave the stored value
  // untouched when the key already exists.
  FlatHashMap<std::vector<int>> map;
  std::vector<int> payload(64, 3);
  auto [v, inserted] = map.TryEmplace(11, std::move(payload));
  EXPECT_TRUE(inserted);
  EXPECT_TRUE(payload.empty()) << "argument should have been moved from";
  EXPECT_EQ(v->size(), 64u);

  std::vector<int> other(8, 1);
  auto [again, inserted2] = map.TryEmplace(11, std::move(other));
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(again->size(), 64u) << "existing value must be untouched";
  EXPECT_EQ(other.size(), 8u) << "argument must not be consumed on hit";
}

TEST(FlatHashMapTest, CopyAndMoveSemantics) {
  // refresh.cc stages a deep copy of the finest-cell map before swapping;
  // copies must be independent and moves must leave the source reusable.
  FlatHashMap<std::vector<int>> map;
  for (uint64_t k = 0; k < 200; ++k) map[k].assign(5, static_cast<int>(k));

  FlatHashMap<std::vector<int>> copy = map;
  ASSERT_EQ(copy.size(), map.size());
  copy[7].assign(1, -1);
  EXPECT_EQ(map.Find(7u)->size(), 5u) << "copy must not alias the source";
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_NE(copy.Find(k), nullptr);
    if (k != 7) EXPECT_EQ((*copy.Find(k))[0], static_cast<int>(k));
  }

  FlatHashMap<std::vector<int>> moved = std::move(map);
  EXPECT_EQ(moved.size(), 200u);
  EXPECT_TRUE(map.empty());  // NOLINT(bugprone-use-after-move)
  map[1].assign(2, 4);       // moved-from map is reusable
  EXPECT_EQ(map.size(), 1u);

  map = std::move(moved);
  EXPECT_EQ(map.size(), 200u);
  copy = map;  // copy-assign over existing contents
  EXPECT_EQ(copy.size(), 200u);
  EXPECT_EQ(copy.Find(7u)->size(), 5u);
}

TEST(FlatHashSetTest, InsertContainsErase) {
  FlatHashSet set;
  EXPECT_TRUE(set.Insert(5));
  EXPECT_FALSE(set.Insert(5));
  EXPECT_TRUE(set.Insert(0));
  EXPECT_TRUE(set.Contains(5));
  EXPECT_TRUE(set.Contains(0));
  EXPECT_FALSE(set.Contains(6));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.SortedKeys(), (std::vector<uint64_t>{0, 5}));
  EXPECT_TRUE(set.Erase(5));
  EXPECT_FALSE(set.Erase(5));
  EXPECT_EQ(set.size(), 1u);
}

}  // namespace
}  // namespace tabula

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/tabula.h"
#include "data/taxi_gen.h"
#include "data/workload.h"
#include "ingest/ingestor.h"
#include "loss/mean_loss.h"
#include "serve/metrics.h"
#include "serve/query_server.h"
#include "testing/fault_injection.h"

namespace tabula {
namespace {

/// Shared fixture: a 20k-ride table, a mean-loss cube over two
/// attributes, and a workload of real cells to hammer.
class QueryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TaxiGeneratorOptions gen;
    gen.num_rows = 20000;
    gen.seed = 61;
    table_ = TaxiGenerator(gen).Generate();
    loss_ = std::make_unique<MeanLoss>("fare_amount");
    options_.cubed_attributes = {"payment_type", "rate_code"};
    options_.loss = loss_.get();
    options_.threshold = 0.05;
    options_.keep_maintenance_state = true;
    auto tabula = Tabula::Initialize(*table_, options_);
    ASSERT_TRUE(tabula.ok()) << tabula.status().ToString();
    tabula_ = std::move(tabula).value();

    WorkloadOptions wopts;
    wopts.num_queries = 40;
    wopts.seed = 17;
    auto workload =
        GenerateWorkload(*table_, options_.cubed_attributes, wopts);
    ASSERT_TRUE(workload.ok());
    workload_ = std::move(workload).value();
  }

  /// Actual loss of `answer` against the current ground truth of
  /// `where` (0 when the cell is empty).
  double ActualLoss(const std::vector<PredicateTerm>& where,
                    const DatasetView& answer) {
    auto pred = BoundPredicate::Bind(*table_, where);
    EXPECT_TRUE(pred.ok());
    DatasetView truth(table_.get(), pred->FilterAll());
    if (truth.empty()) return 0.0;
    auto loss = loss_->Loss(truth, answer);
    EXPECT_TRUE(loss.ok());
    return loss.value();
  }

  std::unique_ptr<Table> table_;
  std::unique_ptr<MeanLoss> loss_;
  TabulaOptions options_;
  std::unique_ptr<Tabula> tabula_;
  std::vector<WorkloadQuery> workload_;
};

TEST_F(QueryServerTest, ServesSameAnswerAsDirectQuery) {
  QueryServer server(tabula_.get());
  for (const auto& q : workload_) {
    auto direct = tabula_->Query(q.where);
    ASSERT_TRUE(direct.ok());
    auto served = server.Query(q.where);
    ASSERT_TRUE(served.ok()) << q.ToString();
    ASSERT_NE(served->result, nullptr);
    EXPECT_EQ(served->result->from_local_sample, direct->from_local_sample);
    EXPECT_EQ(served->result->empty_cell, direct->empty_cell);
    EXPECT_EQ(served->result->sample.size(), direct->sample.size());
    EXPECT_FALSE(served->degraded);
  }
}

TEST_F(QueryServerTest, SecondQueryHitsCache) {
  QueryServer server(tabula_.get());
  const auto& where = workload_[0].where;
  auto first = server.Query(where);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  auto second = server.Query(where);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  // Hits hand out the same immutable result object, not a copy.
  EXPECT_EQ(second->result.get(), first->result.get());
  EXPECT_EQ(server.metrics().Snapshot().CounterValue("serve_cache_hits"),
            1u);
}

TEST_F(QueryServerTest, CacheHitIsPredicateOrderInsensitive) {
  QueryServer server(tabula_.get());
  std::vector<PredicateTerm> ab = {
      {"payment_type", CompareOp::kEq, Value("Cash")},
      {"rate_code", CompareOp::kEq, Value("Standard")}};
  std::vector<PredicateTerm> ba = {ab[1], ab[0]};
  auto first = server.Query(ab);
  ASSERT_TRUE(first.ok());
  auto second = server.Query(ba);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
}

TEST_F(QueryServerTest, DuplicateTermsAreCanonicalized) {
  QueryServer server(tabula_.get());
  // Tabula::Query rejects literal duplicates; the server canonicalizes
  // exact repetitions away (same predicate set), so this succeeds.
  std::vector<PredicateTerm> dup = {
      {"payment_type", CompareOp::kEq, Value("Cash")},
      {"payment_type", CompareOp::kEq, Value("Cash")}};
  auto served = server.Query(dup);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  // Contradictory terms on one column are still an error.
  std::vector<PredicateTerm> conflict = {
      {"payment_type", CompareOp::kEq, Value("Cash")},
      {"payment_type", CompareOp::kEq, Value("Credit")}};
  EXPECT_FALSE(server.Query(conflict).ok());
}

TEST_F(QueryServerTest, EmptyCellIsServedAndCached) {
  QueryServer server(tabula_.get());
  std::vector<PredicateTerm> where = {
      {"payment_type", CompareOp::kEq, Value("Barter")}};  // never occurs
  auto first = server.Query(where);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->result->empty_cell);
  EXPECT_EQ(first->result->sample.size(), 0u);
  auto second = server.Query(where);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_TRUE(second->result->empty_cell);
}

TEST_F(QueryServerTest, BatchQueryMatchesIndividualAnswers) {
  QueryServer server(tabula_.get());
  std::vector<std::vector<PredicateTerm>> cells;
  for (const auto& q : workload_) cells.push_back(q.where);
  auto batch = server.BatchQuery(cells);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    const BatchItem& item = (*batch)[i];
    ASSERT_TRUE(item.status.ok()) << workload_[i].ToString();
    auto direct = tabula_->Query(cells[i]);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(item.answer.result->sample.size(), direct->sample.size());
    EXPECT_EQ(item.answer.result->from_local_sample,
              direct->from_local_sample);
  }
  EXPECT_EQ(server.metrics().Snapshot().CounterValue("serve_batches"), 1u);
}

TEST_F(QueryServerTest, BatchIsolatesPerItemErrors) {
  QueryServer server(tabula_.get());
  std::vector<std::vector<PredicateTerm>> cells = {
      {{"payment_type", CompareOp::kEq, Value("Cash")}},
      {{"not_a_cubed_attribute", CompareOp::kEq, Value("x")}},
      {{"rate_code", CompareOp::kEq, Value("JFK")}}};
  auto batch = server.BatchQuery(cells);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE((*batch)[0].status.ok());
  EXPECT_FALSE((*batch)[1].status.ok());
  EXPECT_TRUE((*batch)[2].status.ok());
}

TEST_F(QueryServerTest, BatchBeyondQueueBoundIsRejected) {
  QueryServerOptions sopts;
  sopts.max_concurrency = 2;  // keep max_queue from being widened
  sopts.max_queue = 8;
  QueryServer server(tabula_.get(), sopts);
  std::vector<std::vector<PredicateTerm>> cells(
      9, {{"payment_type", CompareOp::kEq, Value("Cash")}});
  auto batch = server.BatchQuery(cells);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kUnavailable);
}

TEST_F(QueryServerTest, BatchExceptionDoesNotLeakAdmissionSlots) {
  // Regression: BatchQuery incremented admitted_ before the fan-out and
  // decremented only after it. An exception rethrown by ParallelFor
  // (here: the serve.execute seam throwing mid-batch) skipped the
  // decrement, permanently shrinking the admission queue.
  ScopedFaultClear clear;
  QueryServerOptions sopts;
  sopts.enable_cache = false;
  sopts.max_concurrency = 2;
  sopts.max_queue = 8;
  QueryServer server(tabula_.get(), sopts);

  FaultSpec boom;
  boom.throw_exception = true;
  boom.max_triggers = 1;
  FaultInjector::Global().Arm("serve.execute", boom);

  std::vector<std::vector<PredicateTerm>> cells(
      8, {{"payment_type", CompareOp::kEq, Value("Cash")}});
  auto batch = server.BatchQuery(cells);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kInternal);
  FaultInjector::Global().DisarmAll();

  // With the slots released during unwinding, a max-size batch and a
  // plain query both still fit; a leak would reject them forever.
  auto retry = server.BatchQuery(cells);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  for (const BatchItem& item : *retry) EXPECT_TRUE(item.status.ok());
  EXPECT_TRUE(server.Query(cells[0]).ok());
}

TEST_F(QueryServerTest, FailedQueryIsAccountedInLatencyAndSlowLog) {
  // Regression: the Query error path returned before the finish
  // epilogue, so failed requests never reached the serve_latency
  // histogram or the slow-query log — under an error storm the p99
  // looked healthy while every request failed.
  ScopedFaultClear clear;
  QueryServerOptions sopts;
  sopts.enable_cache = false;
  sopts.slow_query_ms = 1e-6;  // log every request
  QueryServer server(tabula_.get(), sopts);

  FaultSpec fail;
  fail.fail = true;
  FaultInjector::Global().Arm("serve.execute", fail);
  auto answer = server.Query(workload_[0].where);
  ASSERT_FALSE(answer.ok());
  FaultInjector::Global().DisarmAll();

  MetricsSnapshot snap = server.metrics().Snapshot();
  EXPECT_EQ(snap.CounterValue("serve_errors"), 1u);
  EXPECT_EQ(server.metrics().histogram("serve_latency").Snapshot().count, 1u)
      << "failed request missing from the latency histogram";
  auto slow = server.slow_query_log().Snapshot();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_TRUE(slow[0].error);
  EXPECT_GT(slow[0].total_millis, 0.0);
}

TEST_F(QueryServerTest, FailingBatchItemsKeepQueueMillisAndLatency) {
  // Regression: ServeBatchItem's error path skipped finish() and never
  // set queue_millis, so failing items vanished from the histogram.
  ScopedFaultClear clear;
  QueryServerOptions sopts;
  sopts.enable_cache = false;
  QueryServer server(tabula_.get(), sopts);

  FaultSpec fail;
  fail.fail = true;
  FaultInjector::Global().Arm("serve.execute", fail);
  std::vector<std::vector<PredicateTerm>> cells(
      4, {{"payment_type", CompareOp::kEq, Value("Cash")}});
  auto batch = server.BatchQuery(cells);
  FaultInjector::Global().DisarmAll();
  ASSERT_TRUE(batch.ok());
  for (const BatchItem& item : *batch) {
    EXPECT_FALSE(item.status.ok());
    EXPECT_TRUE(item.answer.error);
    EXPECT_GT(item.answer.total_millis, 0.0);
  }
  EXPECT_EQ(server.metrics().histogram("serve_latency").Snapshot().count,
            cells.size());
}

TEST_F(QueryServerTest, ExpiredDeadlineDegradesToGlobalSample) {
  QueryServerOptions sopts;
  sopts.enable_cache = false;
  QueryServer server(tabula_.get(), sopts);
  std::vector<std::vector<PredicateTerm>> cells;
  for (size_t i = 0; i < 8; ++i) cells.push_back(workload_[i].where);
  // A deadline that has already passed when each item runs: every item
  // degrades to the global sample instead of doing the cell lookup.
  auto batch = server.BatchQuery(cells, /*deadline_ms=*/1e-6);
  ASSERT_TRUE(batch.ok());
  for (const BatchItem& item : *batch) {
    ASSERT_TRUE(item.status.ok());
    EXPECT_TRUE(item.answer.degraded);
    EXPECT_FALSE(item.answer.result->from_local_sample);
    EXPECT_EQ(item.answer.result->sample.size(),
              tabula_->global_sample().size());
  }
  EXPECT_EQ(server.metrics().Snapshot().CounterValue("serve_degraded"),
            cells.size());
}

/// The ISSUE's concurrency smoke test: many client threads, mixed
/// cached/uncached/empty-cell traffic, every non-degraded answer must
/// still satisfy the θ loss bound. Canonical TSan target
/// (TABULA_SANITIZE=thread).
TEST_F(QueryServerTest, ConcurrentMixedLoadKeepsLossBound) {
  QueryServerOptions sopts;
  sopts.cache.num_shards = 4;
  QueryServer server(tabula_.get(), sopts);

  const size_t kThreads = 8;
  const size_t kQueriesPerThread = 150;
  std::atomic<size_t> failures{0};
  std::atomic<size_t> served{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (size_t i = 0; i < kQueriesPerThread; ++i) {
        size_t pick = (t * 31 + i * 7) % (workload_.size() + 2);
        std::vector<PredicateTerm> where;
        if (pick < workload_.size()) {
          where = workload_[pick].where;  // mix of repeats → cache hits
        } else if (pick == workload_.size()) {
          where = {{"payment_type", CompareOp::kEq, Value("Barter")}};
        } else {
          where = {{"rate_code", CompareOp::kEq, Value("Nowhere")}};
        }
        auto answer = server.Query(where);
        if (!answer.ok() || answer->result == nullptr) {
          ++failures;
          continue;
        }
        ++served;
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(served.load(), kThreads * kQueriesPerThread);

  // Re-check the θ bound for every distinct cell that was served (the
  // answers are deterministic, so post-hoc verification is equivalent
  // and keeps the loss evaluation out of the contended phase).
  for (const auto& q : workload_) {
    auto answer = server.Query(q.where);
    ASSERT_TRUE(answer.ok());
    EXPECT_LE(ActualLoss(q.where, answer->result->sample),
              options_.threshold)
        << q.ToString();
  }

  MetricsSnapshot snap = server.metrics().Snapshot();
  uint64_t total = snap.CounterValue("serve_queries_total");
  EXPECT_EQ(total, kThreads * kQueriesPerThread + workload_.size());
  EXPECT_EQ(snap.CounterValue("serve_cache_hits") +
                snap.CounterValue("serve_cache_misses"),
            total);
  EXPECT_GT(snap.CounterValue("serve_cache_hits"), 0u);
  ResultCacheStats cache_stats = server.cache().Stats();
  EXPECT_GT(cache_stats.HitRate(), 0.5);  // 1200 queries over ~42 cells
}

/// A Refresh() that lands mid-load must fence the cache: answers after
/// it reflect the new data, never a stale cached sample.
TEST_F(QueryServerTest, RefreshMidLoadNeverServesStaleSample) {
  QueryServer server(tabula_.get());
  std::vector<PredicateTerm> skewed = {
      {"payment_type", CompareOp::kEq, Value("No Charge")}};

  // Pre-load: cache the cell's current answer and hit it once.
  auto before = server.Query(skewed);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(server.Query(skewed)->cache_hit);

  // Client threads hammer the server while the base table grows and a
  // Refresh lands. They skip the skewed cell itself: a client running
  // it in the instant after Refresh() returns would re-cache a fresh
  // answer and race the deterministic cache-miss probe below.
  const std::string skewed_key = CanonicalPredicateKey(skewed);
  std::vector<const WorkloadQuery*> client_queries;
  for (const auto& q : workload_) {
    if (CanonicalPredicateKey(CanonicalizeTerms(q.where)) != skewed_key) {
      client_queries.push_back(&q);
    }
  }
  ASSERT_LT(client_queries.size(), workload_.size());  // workload hits the cell
  std::atomic<bool> stop{false};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto& q = *client_queries[(t + i++) % client_queries.size()];
        auto answer = server.Query(q.where);
        if (!answer.ok()) ++failures;
      }
    });
  }

  // Skew the cell hard enough that its old sample violates θ against
  // the new truth (fares far above the previous mean).
  const Schema& schema = table_->schema();
  std::vector<Value> row(schema.num_fields());
  row[0] = Value("CMT");
  row[1] = Value("Mon");
  row[2] = Value("1");
  row[3] = Value("No Charge");
  row[4] = Value("Standard");
  row[5] = Value("N");
  row[6] = Value("Mon");
  row[7] = Value("[0,5)");
  row[8] = Value(1.0);
  row[9] = Value(500.0);
  row[10] = Value(0.0);
  row[11] = Value(0.5);
  row[12] = Value(0.5);
  for (size_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(table_->AppendRow(row).ok());
  }
  uint64_t generation_before = server.cache().generation();
  Tabula::RefreshStats rstats;
  ASSERT_TRUE(server.Refresh(&rstats).ok());
  EXPECT_EQ(rstats.new_rows, 2000u);
  EXPECT_GT(server.cache().generation(), generation_before);

  stop = true;
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0u);

  // The post-refresh answer must satisfy θ against the NEW truth. A
  // stale cached sample would fail this by an order of magnitude.
  auto after = server.Query(skewed);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->cache_hit);
  EXPECT_LE(ActualLoss(skewed, after->result->sample), options_.threshold);
  // And the old handle is still safe to read (shared ownership), even
  // though it no longer reflects the cube.
  EXPECT_GT(before->result->sample.size(), 0u);
}

TEST_F(QueryServerTest, MetricsRenderText) {
  QueryServer server(tabula_.get());
  ASSERT_TRUE(server.Query(workload_[0].where).ok());
  ASSERT_TRUE(server.Query(workload_[0].where).ok());
  std::string text = server.MetricsText();
  EXPECT_NE(text.find("serve_queries_total 2"), std::string::npos) << text;
  EXPECT_NE(text.find("serve_cache_hits 1"), std::string::npos) << text;
  EXPECT_NE(text.find("serve_latency_p99_us"), std::string::npos) << text;
}

TEST_F(QueryServerTest, TraceFlagYieldsSpanOnDemand) {
  Tracer tracer(TracerOptions{TraceMode::kOnDemand, 256});
  QueryServerOptions opts;
  opts.tracer = &tracer;
  QueryServer server(tabula_.get(), opts);

  QueryRequest plain(workload_[0].where);
  auto untraced = server.Query(plain);
  ASSERT_TRUE(untraced.ok());
  EXPECT_EQ(untraced->span_id, 0u);

  QueryRequest traced(workload_[1].where);
  traced.trace = true;
  auto answer = server.Query(traced);
  ASSERT_TRUE(answer.ok());
  EXPECT_NE(answer->span_id, 0u);
  // The span is retrievable from the tracer by the returned id.
  auto subtree = SpanSubtree(tracer.Snapshot(), answer->span_id);
  ASSERT_FALSE(subtree.empty());
  EXPECT_EQ(subtree.back().name, "serve.query");
}

TEST_F(QueryServerTest, BypassCacheSkipsProbeButStillFills) {
  QueryServer server(tabula_.get());
  const auto& where = workload_[0].where;
  ASSERT_TRUE(server.Query(QueryRequest(where)).ok());  // fills the cache

  QueryRequest bypass(where);
  bypass.consistency = ConsistencyHint::kBypassCache;
  auto fresh = server.Query(bypass);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->cache_hit);
  // A bypassed probe counts neither as hit nor as miss.
  auto snap = server.metrics().Snapshot();
  EXPECT_EQ(snap.CounterValue("serve_cache_hits"), 0u);

  // The bypassing query still refilled the cache for everyone else.
  auto cached = server.Query(QueryRequest(where));
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->cache_hit);
}

TEST_F(QueryServerTest, DeprecatedOverloadMatchesQueryRequestPath) {
  QueryServer server(tabula_.get());
  auto old_style = server.Query(workload_[0].where);
  ASSERT_TRUE(old_style.ok());
  auto new_style = server.Query(QueryRequest(workload_[0].where));
  ASSERT_TRUE(new_style.ok());
  EXPECT_TRUE(new_style->cache_hit);  // same canonical key, same cache slot
  EXPECT_EQ(new_style->result.get(), old_style->result.get());
}

// ---------- progressive answers under streaming ingestion ----------

/// Serving-side contract of the ingest subsystem (DESIGN.md §8): every
/// answer carries the cube generation it was computed at plus an honest
/// `stale` tag while appended rows pend, the result cache is fenced on
/// every ingest mutation, and kFreshWithinDeadline waits for the
/// in-flight cycle instead of degrading to the global sample.
class ServeIngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TaxiGeneratorOptions gen;
    gen.num_rows = 21000;
    gen.seed = 61;
    full_ = TaxiGenerator(gen).Generate();
    base_rows_ = 20000;
    std::vector<RowId> base(base_rows_);
    for (RowId r = 0; r < base_rows_; ++r) base[r] = r;
    table_ = full_->TakeRows(base);
    loss_ = std::make_unique<MeanLoss>("fare_amount");
    options_.cubed_attributes = {"payment_type", "rate_code"};
    options_.loss = loss_.get();
    options_.threshold = 0.05;
    options_.keep_maintenance_state = true;
    auto tabula = Tabula::Initialize(*table_, options_);
    ASSERT_TRUE(tabula.ok()) << tabula.status().ToString();
    tabula_ = std::move(tabula).value();
  }

  std::vector<std::vector<Value>> BoxRows(RowId begin, RowId end) {
    std::vector<std::vector<Value>> rows;
    for (RowId r = begin; r < end; ++r) {
      std::vector<Value> row;
      row.reserve(full_->num_columns());
      for (size_t c = 0; c < full_->num_columns(); ++c) {
        row.push_back(full_->column(c).GetValue(r));
      }
      rows.push_back(std::move(row));
    }
    return rows;
  }

  FaultSpec ErrorSpec() {
    FaultSpec spec;
    spec.every_nth = 1;
    spec.code = StatusCode::kIOError;
    spec.message = "injected ingest fault";
    return spec;
  }

  std::unique_ptr<Table> full_;
  std::unique_ptr<Table> table_;
  size_t base_rows_ = 0;
  std::unique_ptr<MeanLoss> loss_;
  TabulaOptions options_;
  std::unique_ptr<Tabula> tabula_;
};

TEST_F(ServeIngestTest, ServedAnswersCarryGenerationAndStaleTag) {
  ScopedFaultClear clear;
  QueryServer server(tabula_.get());
  IngestorOptions iopts;
  iopts.server = &server;
  auto ingestor = Ingestor::Make(tabula_.get(), table_.get(), iopts);
  ASSERT_TRUE(ingestor.ok());
  const uint64_t gen0 = tabula_->generation();

  const QueryRequest probe(
      {{"payment_type", CompareOp::kEq, Value("Cash")}});
  auto before = server.Query(probe);
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before.value().result->stale);
  EXPECT_EQ(before.value().result->generation, gen0);
  EXPECT_TRUE(server.Query(probe).value().cache_hit);

  // A failed mid-batch cycle leaves the rows pending: the cube keeps
  // serving the previous generation, tagged stale — and the append
  // itself fenced the cache, so the tag is recomputed, not replayed.
  FaultInjector::Global().Arm("ingest.merge", ErrorSpec());
  EXPECT_FALSE(
      ingestor.value()->Append(BoxRows(base_rows_, base_rows_ + 500)).ok());
  EXPECT_EQ(ingestor.value()->PendingRows(), 500u);
  auto during = server.Query(probe);
  ASSERT_TRUE(during.ok());
  EXPECT_FALSE(during.value().cache_hit);
  EXPECT_TRUE(during.value().result->stale);
  EXPECT_EQ(during.value().result->generation, gen0);

  FaultInjector::Global().DisarmAll();
  ASSERT_TRUE(ingestor.value()->Drain().ok());
  auto after = server.Query(probe);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.value().cache_hit);  // the commit fenced the cache
  EXPECT_FALSE(after.value().result->stale);
  EXPECT_EQ(after.value().result->generation, gen0 + 1);
}

TEST_F(ServeIngestTest, FreshWithinDeadlineWaitsForIngestToCommit) {
  QueryServer server(tabula_.get());
  IngestorOptions iopts;
  iopts.server = &server;
  iopts.async = true;
  auto ingestor = Ingestor::Make(tabula_.get(), table_.get(), iopts);
  ASSERT_TRUE(ingestor.ok());
  const uint64_t gen0 = tabula_->generation();
  ASSERT_TRUE(
      ingestor.value()->Append(BoxRows(base_rows_, base_rows_ + 1000)).ok());

  QueryRequest req({{"payment_type", CompareOp::kEq, Value("Cash")}});
  req.consistency = ConsistencyHint::kFreshWithinDeadline;
  req.deadline_ms = 10000.0;
  auto answer = server.Query(req);
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer.value().degraded);
  EXPECT_FALSE(answer.value().result->stale);
  EXPECT_EQ(answer.value().result->generation, gen0 + 1);
  ASSERT_TRUE(ingestor.value()->Drain().ok());
}

TEST_F(ServeIngestTest, FreshWithinDeadlineTimesOutToHonestStaleAnswer) {
  ScopedFaultClear clear;
  QueryServer server(tabula_.get());
  IngestorOptions iopts;
  iopts.server = &server;
  auto ingestor = Ingestor::Make(tabula_.get(), table_.get(), iopts);
  ASSERT_TRUE(ingestor.ok());
  const uint64_t gen0 = tabula_->generation();
  FaultInjector::Global().Arm("ingest.merge", ErrorSpec());
  EXPECT_FALSE(
      ingestor.value()->Append(BoxRows(base_rows_, base_rows_ + 400)).ok());
  EXPECT_EQ(ingestor.value()->PendingRows(), 400u);

  QueryRequest req({{"payment_type", CompareOp::kEq, Value("Cash")}});
  req.consistency = ConsistencyHint::kFreshWithinDeadline;
  req.deadline_ms = 50.0;
  auto answer = server.Query(req);
  ASSERT_TRUE(answer.ok());
  // Deadline expired with the cycle still failing: the freshest REAL
  // answer, honestly stale-tagged — never the degraded global-sample
  // fallback.
  EXPECT_FALSE(answer.value().degraded);
  EXPECT_TRUE(answer.value().result->stale);
  EXPECT_EQ(answer.value().result->generation, gen0);

  FaultInjector::Global().DisarmAll();
  ASSERT_TRUE(ingestor.value()->Drain().ok());
  auto fresh = server.Query(req);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh.value().result->stale);
  EXPECT_EQ(fresh.value().result->generation, gen0 + 1);
}

// ---------- metrics primitives ----------

TEST(LatencyHistogramTest, PercentilesFromKnownDistribution) {
  LatencyHistogram hist;
  // 90 fast observations (~8 us) and 10 slow ones (~4096 us).
  for (int i = 0; i < 90; ++i) hist.Record(7.0);
  for (int i = 0; i < 10; ++i) hist.Record(3000.0);
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_LE(snap.P50Micros(), 8.0);
  EXPECT_GT(snap.P95Micros(), 1000.0);
  EXPECT_GT(snap.P99Micros(), 1000.0);
  EXPECT_NEAR(snap.MeanMicros(), 0.9 * 7 + 0.1 * 3000, 2.0);
}

TEST(LatencyHistogramTest, EmptyAndOverflow) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.Snapshot().P99Micros(), 0.0);
  hist.Record(1e12);  // beyond the last bucket
  EXPECT_EQ(hist.Snapshot().count, 1u);
  EXPECT_GT(hist.Snapshot().P50Micros(), 1e8);
}

TEST(LatencyHistogramTest, OverflowPercentileIsFlaggedLowerBound) {
  LatencyHistogram hist;
  hist.Record(1e12);  // lands in the overflow bucket
  PercentileEstimate est = hist.Snapshot().PercentileWithOverflow(0.5);
  EXPECT_TRUE(est.overflow);
  // The estimate is exactly the overflow bucket's lower edge (2^27 us),
  // not a number interpolated toward a nonexistent upper edge.
  EXPECT_EQ(est.micros,
            LatencyHistogram::BucketUpperMicros(
                LatencyHistogram::kNumBuckets - 1));

  // A mixed distribution: p50 in range (unflagged), p99 in overflow.
  for (int i = 0; i < 98; ++i) hist.Record(10.0);
  HistogramSnapshot snap = hist.Snapshot();
  PercentileEstimate p50 = snap.PercentileWithOverflow(0.5);
  EXPECT_FALSE(p50.overflow);
  EXPECT_LE(p50.micros, 16.0);
  PercentileEstimate p99 = snap.PercentileWithOverflow(0.995);
  EXPECT_TRUE(p99.overflow);
}

TEST(MetricsRegistryTest, CountersAndGaugesAreStable) {
  MetricsRegistry registry;
  Counter& c = registry.counter("requests");
  c.Increment();
  c.Increment(4);
  EXPECT_EQ(registry.counter("requests").value(), 5u);
  Gauge& g = registry.gauge("in_flight");
  g.Increment();
  g.Decrement();
  EXPECT_EQ(g.value(), 0);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("requests"), 5u);
  EXPECT_NE(snap.ToText().find("requests 5"), std::string::npos);
}

}  // namespace
}  // namespace tabula

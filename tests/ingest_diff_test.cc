/// Incremental-maintenance differential suite: a cube maintained by the
/// streaming Ingestor (base load + N append batches) against a cube
/// built from scratch over the final table, across 20+ seeds and shard
/// counts K ∈ {1, 4}.
///
/// The contract under test (DESIGN.md §8):
///  - the incrementally maintained iceberg-cell SET is identical to the
///    from-scratch build's (loss states fold exactly, classification
///    agrees);
///  - every served answer meets loss(truth, sample) <= θ with truth
///    from a direct predicate scan of the final table;
///  - the guarantee is shard-invariant: K = 1 and K = 4 converge to the
///    same iceberg set, and K = 1 is bit-identical to the plain engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/tabula.h"
#include "data/synthetic_gen.h"
#include "data/workload.h"
#include "ingest/ingestor.h"
#include "loss/loss_registry.h"
#include "shard/sharded_tabula.h"
#include "storage/predicate.h"

namespace tabula {
namespace {

struct DiffFixture {
  std::unique_ptr<Table> table;  // the FULL table (base + appends)
  std::vector<std::string> attrs;
};

DiffFixture MakeFixture(uint64_t seed, size_t rows) {
  SyntheticGeneratorOptions gen;
  gen.seed = seed * 6151 + 29;
  gen.num_rows = rows;
  gen.cell_spread = 1.1;
  gen.noise = 0.1;
  gen.columns.clear();
  Rng rng(seed * 17 + 3);
  const size_t ncols = 2 + (seed % 2);
  for (size_t c = 0; c < ncols; ++c) {
    SyntheticColumnSpec col;
    col.name = "c" + std::to_string(c);
    col.cardinality = 2 + static_cast<uint32_t>(rng.UniformInt(0, 3));
    col.zipf_skew = rng.Bernoulli(0.5) ? 0.8 : 0.0;
    gen.columns.push_back(col);
  }
  SyntheticGenerator generator(gen);
  DiffFixture f;
  f.table = generator.Generate();
  f.attrs = generator.CategoricalColumns();
  return f;
}

std::shared_ptr<const LossFunction> MakeLoss() {
  LossParams params;
  params.columns = {"value"};
  auto loss = MakeLossFunction("mean_loss", params);
  EXPECT_TRUE(loss.ok()) << loss.status().ToString();
  return std::shared_ptr<const LossFunction>(std::move(loss).value());
}

std::vector<Value> BoxRow(const Table& table, RowId r) {
  std::vector<Value> row;
  row.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    row.push_back(table.column(c).GetValue(r));
  }
  return row;
}

std::vector<uint64_t> PlainIcebergKeys(const Tabula& t) {
  std::vector<uint64_t> keys;
  for (const IcebergCell& c : t.cube_table().cells()) keys.push_back(c.key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Prefix copy of `full` (shared dictionaries, so categorical codes —
/// and therefore cube keys — stay comparable).
std::unique_ptr<Table> TablePrefix(const Table& full, size_t rows) {
  std::vector<RowId> ids(rows);
  for (RowId r = 0; r < rows; ++r) ids[r] = r;
  return full.TakeRows(ids);
}

/// Streams rows [base, full.num_rows()) into `ingestor` in `batches`
/// roughly equal batches (sync mode: each Append runs its cycle).
void StreamAppends(Ingestor* ingestor, const Table& full, size_t base,
                   size_t batches) {
  const size_t total = full.num_rows() - base;
  for (size_t b = 0; b < batches; ++b) {
    const size_t lo = base + total * b / batches;
    const size_t hi = base + total * (b + 1) / batches;
    std::vector<std::vector<Value>> rows;
    rows.reserve(hi - lo);
    for (RowId r = lo; r < hi; ++r) rows.push_back(BoxRow(full, r));
    Status st = ingestor->Append(rows);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  Status st = ingestor->Drain();
  ASSERT_TRUE(st.ok()) << st.ToString();
}

void CheckThetaBound(const Table& table, const LossFunction& loss,
                     double theta, const WorkloadQuery& q,
                     const TabulaQueryResult& result, const char* label,
                     uint64_t seed) {
  auto bound = BoundPredicate::Bind(table, q.where);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  std::vector<RowId> truth = bound.value().FilterAll();
  if (result.empty_cell) {
    EXPECT_TRUE(truth.empty()) << "seed=" << seed << " " << label;
  }
  if (truth.empty()) return;
  DatasetView truth_view(&table, std::move(truth));
  auto l = loss.Loss(truth_view, result.sample);
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  EXPECT_LE(l.value(), theta * (1.0 + 1e-7) + 1e-12)
      << "seed=" << seed << " " << label << " query=" << q.ToString();
}

void RunIngestEquivalence(uint64_t seed) {
  const size_t rows = 700 + (seed % 3) * 150;
  DiffFixture f = MakeFixture(seed, rows);
  Rng rng(seed * 991 + 1);
  const double theta = 0.05 + rng.UniformDouble(0.0, 0.05);
  std::shared_ptr<const LossFunction> loss = MakeLoss();
  // Stream the last ~25% of the rows in 2-4 batches.
  const size_t base = rows - rows / 4;
  const size_t batches = 2 + (seed % 3);

  // From-scratch oracle over the final table.
  TabulaOptions plain_opts;
  plain_opts.cubed_attributes = f.attrs;
  plain_opts.owned_loss = loss;
  plain_opts.threshold = theta;
  plain_opts.seed = seed;
  plain_opts.keep_maintenance_state = true;
  auto scratch = Tabula::Initialize(*f.table, plain_opts);
  ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
  const std::vector<uint64_t> oracle_keys = PlainIcebergKeys(*scratch.value());

  WorkloadOptions wopt;
  wopt.num_queries = 10;
  wopt.seed = seed * 211 + 13;
  auto qs = GenerateWorkload(*f.table, f.attrs, wopt);
  ASSERT_TRUE(qs.ok()) << qs.status().ToString();

  // Incrementally maintained plain engine.
  auto plain_live = TablePrefix(*f.table, base);
  auto plain = Tabula::Initialize(*plain_live, plain_opts);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  auto plain_ingestor =
      Ingestor::Make(plain.value().get(), plain_live.get(), IngestorOptions{});
  ASSERT_TRUE(plain_ingestor.ok());
  StreamAppends(plain_ingestor.value().get(), *f.table, base, batches);
  EXPECT_EQ(plain_live->num_rows(), rows);
  EXPECT_EQ(PlainIcebergKeys(*plain.value()), oracle_keys)
      << "seed=" << seed << " incremental plain vs from-scratch";

  for (const WorkloadQuery& q : qs.value()) {
    auto got = plain.value()->Query(QueryRequest(q.where));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_FALSE(got.value().result.stale);
    auto want = scratch.value()->Query(QueryRequest(q.where));
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(got.value().result.from_local_sample,
              want.value().result.from_local_sample)
        << "seed=" << seed << " query=" << q.ToString();
    CheckThetaBound(*plain_live, *loss, theta, q, got.value().result,
                    "plain", seed);
  }

  // Incrementally maintained sharded engines, K ∈ {1, 4}.
  for (size_t k : {size_t{1}, size_t{4}}) {
    ShardedTabulaOptions sopts;
    sopts.base = plain_opts;
    sopts.num_shards = k;
    sopts.partition =
        (seed + k) % 2 == 0 ? ShardPartition::kHash : ShardPartition::kRange;
    auto live = TablePrefix(*f.table, base);
    auto sharded = ShardedTabula::Initialize(*live, sopts);
    ASSERT_TRUE(sharded.ok()) << "seed=" << seed << " k=" << k << ": "
                              << sharded.status().ToString();
    auto ingestor =
        Ingestor::Make(sharded.value().get(), live.get(), IngestorOptions{});
    ASSERT_TRUE(ingestor.ok());
    StreamAppends(ingestor.value().get(), *f.table, base, batches);
    EXPECT_EQ(ingestor.value()->PendingRows(), 0u);

    // Shard-invariant convergence: same iceberg set as the oracle.
    EXPECT_EQ(sharded.value()->MergedIcebergKeys(), oracle_keys)
        << "seed=" << seed << " k=" << k;

    for (const WorkloadQuery& q : qs.value()) {
      auto got = sharded.value()->Query(QueryRequest(q.where));
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      const TabulaQueryResult& result = got.value().result;
      EXPECT_FALSE(result.stale);
      EXPECT_TRUE(result.unavailable_shards.empty());
      if (k == 1) {
        // Strict pass-through: bit-identical to the incremental plain
        // engine (same rows, same seed, same maintenance path).
        auto want = plain.value()->Query(QueryRequest(q.where));
        ASSERT_TRUE(want.ok());
        EXPECT_EQ(result.sample.ToRowIds(),
                  want.value().result.sample.ToRowIds())
            << "seed=" << seed << " query=" << q.ToString();
      }
      CheckThetaBound(*live, *loss, theta, q, result, "sharded", seed);
    }
  }
}

TEST(IngestDiff, IncrementalMatchesFromScratchAcross20Seeds) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    RunIngestEquivalence(seed);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "fatal failure at seed " << seed;
    }
  }
}

/// A couple of extra seeds at a larger append fraction (50%), where a
/// full encoder-layout change (new categorical value first seen in an
/// append) is more likely and the full-rebuild fallback gets exercised.
TEST(IngestDiff, LargeAppendFractionSeeds) {
  for (uint64_t seed = 41; seed <= 44; ++seed) {
    const size_t rows = 900;
    DiffFixture f = MakeFixture(seed, rows);
    std::shared_ptr<const LossFunction> loss = MakeLoss();
    TabulaOptions opts;
    opts.cubed_attributes = f.attrs;
    opts.owned_loss = loss;
    opts.threshold = 0.08;
    opts.seed = seed;
    opts.keep_maintenance_state = true;
    auto scratch = Tabula::Initialize(*f.table, opts);
    ASSERT_TRUE(scratch.ok());
    const std::vector<uint64_t> oracle_keys =
        PlainIcebergKeys(*scratch.value());

    auto live = TablePrefix(*f.table, rows / 2);
    auto engine = Tabula::Initialize(*live, opts);
    ASSERT_TRUE(engine.ok());
    auto ingestor =
        Ingestor::Make(engine.value().get(), live.get(), IngestorOptions{});
    ASSERT_TRUE(ingestor.ok());
    StreamAppends(ingestor.value().get(), *f.table, rows / 2, 3);
    EXPECT_EQ(PlainIcebergKeys(*engine.value()), oracle_keys)
        << "seed=" << seed;
  }
}

}  // namespace
}  // namespace tabula

#include <gtest/gtest.h>

#include "baselines/poisam.h"
#include "baselines/sample_cube.h"
#include "baselines/sample_first.h"
#include "baselines/sample_on_the_fly.h"
#include "baselines/snappy_like.h"
#include "baselines/tabula_approach.h"
#include "data/taxi_gen.h"
#include "data/workload.h"
#include "loss/mean_loss.h"
#include "loss/min_dist_loss.h"
#include "sampling/random_sampler.h"

namespace tabula {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TaxiGeneratorOptions gen;
    gen.num_rows = 30000;
    gen.seed = 6;
    table_ = TaxiGenerator(gen).Generate().release();
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }

  static std::vector<std::string> Attrs() {
    return {"payment_type", "rate_code"};
  }
  static std::vector<PredicateTerm> JfkQuery() {
    return {{"rate_code", CompareOp::kEq, Value("JFK")}};
  }

  static const Table* table_;
};

const Table* BaselinesTest::table_ = nullptr;

TEST_F(BaselinesTest, SampleFirstRespectsBudgetAndFilters) {
  uint64_t budget = 200 * TupleBytes(*table_);
  SampleFirst approach(*table_, budget, "SamFirst-test");
  ASSERT_TRUE(approach.Prepare().ok());
  EXPECT_EQ(approach.sample_size(), 200u);
  EXPECT_LE(approach.MemoryBytes(), budget + TupleBytes(*table_));

  auto answer = approach.Execute(JfkQuery());
  ASSERT_TRUE(answer.ok());
  // Every returned tuple really satisfies the filter.
  auto rate_col = table_->ColumnByName("rate_code");
  ASSERT_TRUE(rate_col.ok());
  for (size_t i = 0; i < answer->size(); ++i) {
    EXPECT_EQ(rate_col.value()->GetValue(answer->row(i)).AsString(), "JFK");
  }
  // JFK is ~5.5% of rides: a 200-tuple sample returns only a handful.
  EXPECT_LT(answer->size(), 50u);
}

TEST_F(BaselinesTest, SampleFirstRequiresPrepare) {
  SampleFirst approach(*table_, 1000, "SamFirst");
  EXPECT_FALSE(approach.Execute(JfkQuery()).ok());
}

TEST_F(BaselinesTest, SampleOnTheFlyGuaranteesLoss) {
  MeanLoss loss("fare_amount");
  SampleOnTheFly approach(*table_, &loss, 0.05);
  ASSERT_TRUE(approach.Prepare().ok());
  EXPECT_EQ(approach.MemoryBytes(), 0u);
  auto answer = approach.Execute(JfkQuery());
  ASSERT_TRUE(answer.ok());

  auto pred = BoundPredicate::Bind(*table_, JfkQuery());
  DatasetView truth(table_, pred->FilterAll());
  EXPECT_LE(loss.Loss(truth, *answer).value(), 0.05);
}

TEST_F(BaselinesTest, PoiSamReturnsSmallSamples) {
  auto loss = MakeHeatmapLoss("pickup_x", "pickup_y");
  PoiSam approach(*table_, loss.get(), 0.01);
  ASSERT_TRUE(approach.Prepare().ok());
  auto answer = approach.Execute(JfkQuery());
  ASSERT_TRUE(answer.ok());
  EXPECT_GT(answer->size(), 0u);
  // POIsam samples from a ~150-tuple random pre-sample (ε=5%, δ=10%).
  EXPECT_LE(answer->size(), SerflingSampleSize(0.05, 0.10));
}

TEST_F(BaselinesTest, PoiSamFixedSizeModeReturnsExactSize) {
  auto loss = MakeHeatmapLoss("pickup_x", "pickup_y");
  PoiSam original(*table_, loss.get(), /*theta=*/0.01, 0.05, 0.10, {},
                  /*seed=*/42, PoiSam::Mode::kFixedSize, /*fixed_size=*/50);
  ASSERT_TRUE(original.Prepare().ok());
  auto answer = original.Execute(JfkQuery());
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->size(), 50u);

  // Tiny population: size capped by the population itself.
  auto tiny = original.Execute(
      {{"payment_type", CompareOp::kEq, Value("Dispute")},
       {"rate_code", CompareOp::kEq, Value("Nassau")}});
  ASSERT_TRUE(tiny.ok());
  EXPECT_LE(tiny->size(), 50u);
}

TEST_F(BaselinesTest, SnappyLikeCertifiesOrFallsBack) {
  SnappyLike approach(*table_, "fare_amount", Attrs(),
                      /*sample_bytes=*/500 * TupleBytes(*table_),
                      /*error_bound=*/0.05, "SnappyData-test");
  ASSERT_TRUE(approach.Prepare().ok());
  EXPECT_GT(approach.MemoryBytes(), 0u);

  auto avg = approach.ExecuteAvg(JfkQuery());
  ASSERT_TRUE(avg.ok());
  // Ground truth.
  auto pred = BoundPredicate::Bind(*table_, JfkQuery());
  DatasetView truth(table_, pred->FilterAll());
  auto fare = table_->ColumnByName("fare_amount");
  NumericAggState exact;
  for (size_t i = 0; i < truth.size(); ++i) {
    exact.Add(fare.value()->As<DoubleColumn>()->At(truth.row(i)));
  }
  double rel_err = std::abs(avg->avg - exact.Avg()) / exact.Avg();
  if (avg->fell_back_to_raw) {
    EXPECT_NEAR(rel_err, 0.0, 1e-9);  // fallback computes the exact answer
  } else {
    // Certified: the CLT bound must hold comfortably on this data.
    EXPECT_LE(rel_err, 0.05);
  }
}

TEST_F(BaselinesTest, SnappyLikeUnknownValueIsEmpty) {
  SnappyLike approach(*table_, "fare_amount", Attrs(), 100000, 0.05,
                      "SnappyData-test");
  ASSERT_TRUE(approach.Prepare().ok());
  auto avg = approach.ExecuteAvg(
      {{"rate_code", CompareOp::kEq, Value("Hyperloop")}});
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(avg->avg, 0.0);
}

TEST_F(BaselinesTest, FullCubeMaterializesEveryCell) {
  MeanLoss loss("fare_amount");
  MaterializedSampleCube full(*table_, Attrs(), &loss, 0.05,
                              MaterializedSampleCube::Mode::kFull);
  ASSERT_TRUE(full.Prepare().ok());
  EXPECT_EQ(full.num_materialized_cells(), full.total_cells());
  auto answer = full.Execute(JfkQuery());
  ASSERT_TRUE(answer.ok());
  EXPECT_GT(answer->size(), 0u);

  auto pred = BoundPredicate::Bind(*table_, JfkQuery());
  DatasetView truth(table_, pred->FilterAll());
  EXPECT_LE(loss.Loss(truth, *answer).value(), 0.05);
}

TEST_F(BaselinesTest, PartialCubeMaterializesOnlyIcebergCells) {
  MeanLoss loss("fare_amount");
  MaterializedSampleCube partial(*table_, Attrs(), &loss, 0.05,
                                 MaterializedSampleCube::Mode::kPartial);
  ASSERT_TRUE(partial.Prepare().ok());
  EXPECT_LT(partial.num_materialized_cells(), partial.total_cells());

  MaterializedSampleCube full(*table_, Attrs(), &loss, 0.05,
                              MaterializedSampleCube::Mode::kFull);
  ASSERT_TRUE(full.Prepare().ok());
  EXPECT_LT(partial.MemoryBytes(), full.MemoryBytes());

  // The guarantee holds on both paths (local or global answer).
  for (const auto& where :
       {JfkQuery(),
        std::vector<PredicateTerm>{
            {"payment_type", CompareOp::kEq, Value("Cash")}}}) {
    auto answer = partial.Execute(where);
    ASSERT_TRUE(answer.ok());
    auto pred = BoundPredicate::Bind(*table_, where);
    DatasetView truth(table_, pred->FilterAll());
    EXPECT_LE(loss.Loss(truth, *answer).value(), 0.05);
  }
}

TEST_F(BaselinesTest, CubeApproachesAgreeWithTabula) {
  // Tabula and the naive cubes must produce threshold-satisfying answers
  // for the same workload; Tabula just gets there cheaper.
  MeanLoss loss("fare_amount");
  TabulaOptions opts;
  opts.cubed_attributes = Attrs();
  opts.loss = &loss;
  opts.threshold = 0.05;
  TabulaApproach tabula(*table_, opts);
  ASSERT_TRUE(tabula.Prepare().ok());

  WorkloadOptions wopts;
  wopts.num_queries = 25;
  auto workload = GenerateWorkload(*table_, Attrs(), wopts);
  ASSERT_TRUE(workload.ok());
  for (const auto& q : workload.value()) {
    auto answer = tabula.Execute(q.where);
    ASSERT_TRUE(answer.ok());
    auto pred = BoundPredicate::Bind(*table_, q.where);
    DatasetView truth(table_, pred->FilterAll());
    if (truth.empty()) continue;
    EXPECT_LE(loss.Loss(truth, *answer).value(), 0.05) << q.ToString();
  }
}

TEST_F(BaselinesTest, NoSamplingReturnsWholePopulation) {
  NoSampling approach(*table_);
  ASSERT_TRUE(approach.Prepare().ok());
  auto answer = approach.Execute(JfkQuery());
  ASSERT_TRUE(answer.ok());
  auto pred = BoundPredicate::Bind(*table_, JfkQuery());
  EXPECT_EQ(answer->size(), pred->FilterAll().size());
}

TEST_F(BaselinesTest, TabulaStarNameAndBehaviour) {
  MeanLoss loss("fare_amount");
  TabulaOptions opts;
  opts.cubed_attributes = Attrs();
  opts.loss = &loss;
  opts.threshold = 0.05;
  TabulaApproach star(*table_, opts, /*enable_selection=*/false);
  EXPECT_EQ(star.name(), "Tabula*");
  ASSERT_TRUE(star.Prepare().ok());
  TabulaApproach normal(*table_, opts);
  EXPECT_EQ(normal.name(), "Tabula");
  ASSERT_TRUE(normal.Prepare().ok());
  EXPECT_GE(star.MemoryBytes(), normal.MemoryBytes());
}

}  // namespace
}  // namespace tabula

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "baselines/snappy_like.h"
#include "baselines/tabula_approach.h"
#include "data/taxi_gen.h"
#include "data/workload.h"
#include "loss/mean_loss.h"
#include "viz/analysis.h"
#include "viz/dashboard.h"
#include "viz/heatmap.h"

namespace tabula {
namespace {

std::unique_ptr<Table> SmallTaxi(size_t n = 15000) {
  TaxiGeneratorOptions gen;
  gen.num_rows = n;
  gen.seed = 44;
  return TaxiGenerator(gen).Generate();
}

TEST(HeatmapTest, DensityConcentratesWherePointsAre) {
  Schema schema({{"x", DataType::kDouble}, {"y", DataType::kDouble}});
  Table table(schema);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(table.AppendRow({Value(0.25), Value(0.25)}).ok());
  }
  HeatmapOptions opts;
  opts.width = 64;
  opts.height = 64;
  Heatmap map(opts);
  ASSERT_TRUE(map.Render(DatasetView(&table), "x", "y").ok());
  // Pixel near (0.25, 0.25) must dominate the far corner.
  EXPECT_GT(map.density(16, 16), map.density(60, 60));
  EXPECT_GT(map.density(16, 16), 0.0);
}

TEST(HeatmapTest, VisualDifferenceDetectsMissingHotspot) {
  auto table = SmallTaxi();
  DatasetView all(table.get());

  // Full data vs. data with all airport pickups removed (the Figure 2
  // failure mode of SampleFirst).
  auto rate = table->ColumnByName("rate_code");
  ASSERT_TRUE(rate.ok());
  std::vector<RowId> no_airport;
  for (RowId r = 0; r < table->num_rows(); ++r) {
    std::string v = rate.value()->GetValue(r).AsString();
    if (v != "JFK" && v != "Newark") no_airport.push_back(r);
  }
  Heatmap full_map, cropped_map;
  ASSERT_TRUE(full_map.Render(all, "pickup_x", "pickup_y").ok());
  ASSERT_TRUE(cropped_map
                  .Render(DatasetView(table.get(), no_airport), "pickup_x",
                          "pickup_y")
                  .ok());
  auto diff = Heatmap::VisualDifference(full_map, cropped_map);
  ASSERT_TRUE(diff.ok());
  EXPECT_GT(diff.value(), 0.001);

  // Self-difference is zero.
  auto self_diff = Heatmap::VisualDifference(full_map, full_map);
  EXPECT_DOUBLE_EQ(self_diff.value(), 0.0);
}

TEST(HeatmapTest, WritesImages) {
  auto table = SmallTaxi(2000);
  Heatmap map;
  ASSERT_TRUE(map.Render(DatasetView(table.get()), "pickup_x", "pickup_y").ok());
  auto dir = std::filesystem::temp_directory_path();
  std::string pgm = (dir / "tabula_test.pgm").string();
  std::string ppm = (dir / "tabula_test.ppm").string();
  ASSERT_TRUE(map.WritePgm(pgm).ok());
  ASSERT_TRUE(map.WritePpm(ppm).ok());
  EXPECT_GT(std::filesystem::file_size(pgm), 256u * 256u);
  EXPECT_GT(std::filesystem::file_size(ppm), 3u * 256u * 256u);
  std::remove(pgm.c_str());
  std::remove(ppm.c_str());
}

TEST(HistogramTest, CountsAndShape) {
  Schema schema({{"v", DataType::kDouble}});
  Table table(schema);
  for (double v : {0.5, 1.5, 1.6, 2.5, 2.6, 2.7}) {
    ASSERT_TRUE(table.AppendRow({Value(v)}).ok());
  }
  auto hist = BuildHistogram(DatasetView(&table), "v", 3, 0.0, 3.0);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->counts, (std::vector<double>{1, 2, 3}));
  auto norm = hist->Normalized();
  EXPECT_DOUBLE_EQ(norm[2], 0.5);
  EXPECT_FALSE(hist->Render().empty());
}

TEST(HistogramTest, ShapeDifferenceOfIdenticalIsZero) {
  auto table = SmallTaxi(5000);
  auto a = BuildHistogram(DatasetView(table.get()), "fare_amount", 32);
  ASSERT_TRUE(a.ok());
  auto diff = Histogram::ShapeDifference(*a, *a);
  ASSERT_TRUE(diff.ok());
  EXPECT_DOUBLE_EQ(diff.value(), 0.0);
}

TEST(HistogramTest, AutoRangeHandlesEmptyAndConstant) {
  Schema schema({{"v", DataType::kDouble}});
  Table table(schema);
  auto empty = BuildHistogram(DatasetView(&table, {}), "v", 4);
  ASSERT_TRUE(empty.ok());
  ASSERT_TRUE(table.AppendRow({Value(7.0)}).ok());
  auto constant = BuildHistogram(DatasetView(&table), "v", 4);
  ASSERT_TRUE(constant.ok());
  EXPECT_DOUBLE_EQ(constant->counts[0], 1.0);
}

TEST(AnalysisTest, RegressionRecoversTipRate) {
  auto table = SmallTaxi();
  // Credit rides tip ≈ 20% of fare; regression of tip on fare over credit
  // rides must find a clearly positive slope.
  auto pred = BoundPredicate::Bind(
      *table, {{"payment_type", CompareOp::kEq, Value("Credit")}});
  ASSERT_TRUE(pred.ok());
  DatasetView credit(table.get(), pred->FilterAll());
  auto line = FitRegression(credit, "fare_amount", "tip_amount");
  ASSERT_TRUE(line.ok());
  EXPECT_NEAR(line->slope, 0.20, 0.05);

  // Cash rides tip ~0: slope near zero — the two dashboards differ.
  auto cash_pred = BoundPredicate::Bind(
      *table, {{"payment_type", CompareOp::kEq, Value("Cash")}});
  DatasetView cash(table.get(), cash_pred->FilterAll());
  auto cash_line = FitRegression(cash, "fare_amount", "tip_amount");
  ASSERT_TRUE(cash_line.ok());
  EXPECT_LT(cash_line->slope, 0.05);
}

TEST(AnalysisTest, MeanMatchesAggregate) {
  auto table = SmallTaxi(3000);
  auto mean = ComputeMean(DatasetView(table.get()), "fare_amount");
  ASSERT_TRUE(mean.ok());
  EXPECT_GT(mean.value(), 2.5);  // minimum fare
  EXPECT_LT(mean.value(), 100.0);
}

TEST(DashboardTest, ReportAggregatesAreConsistent) {
  auto table = SmallTaxi();
  MeanLoss loss("fare_amount");
  TabulaOptions opts;
  opts.cubed_attributes = {"payment_type", "rate_code"};
  opts.loss = &loss;
  opts.threshold = 0.05;
  TabulaApproach tabula(*table, opts);
  ASSERT_TRUE(tabula.Prepare().ok());

  WorkloadOptions wopts;
  wopts.num_queries = 20;
  auto workload =
      GenerateWorkload(*table, opts.cubed_attributes, wopts);
  ASSERT_TRUE(workload.ok());

  DashboardOptions dopts;
  dopts.task = VisualTask::kMean;
  dopts.target_column = "fare_amount";
  dopts.loss = &loss;
  auto report = RunDashboard(&tabula, *table, workload.value(), dopts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->queries.size(), 20u);
  EXPECT_GE(report->MaxActualLoss(), report->AvgActualLoss());
  EXPECT_GE(report->AvgActualLoss(), report->MinActualLoss());
  // The deterministic guarantee as seen by the dashboard harness.
  EXPECT_EQ(report->LossViolations(0.05), 0u);
  EXPECT_GT(report->AvgAnswerTuples(), 0.0);
}

TEST(DashboardTest, ScalarAnswerApproachHandledAsAqp) {
  // SnappyData-style approaches answer with a certified AVG: the harness
  // must record no visualization time, no answer tuples, and measure the
  // loss as the scalar's relative error.
  auto table = SmallTaxi(10000);
  SnappyLike snappy(*table, "fare_amount", {"payment_type", "rate_code"},
                    500 * TupleBytes(*table), 0.05, "SnappyData-test");
  WorkloadOptions wopts;
  wopts.num_queries = 15;
  auto workload = GenerateWorkload(
      *table, {"payment_type", "rate_code"}, wopts);
  ASSERT_TRUE(workload.ok());
  ASSERT_TRUE(snappy.Prepare().ok());
  DashboardOptions dopts;
  dopts.task = VisualTask::kMean;
  dopts.target_column = "fare_amount";
  auto report = RunDashboard(&snappy, *table, workload.value(), dopts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const auto& q : report->queries) {
    EXPECT_EQ(q.viz_millis, 0.0);
    EXPECT_EQ(q.answer_tuples, 0u);
  }
  // Certified-or-fallback: the AVG error honours the bound.
  EXPECT_EQ(report->LossViolations(0.05), 0u);
}

TEST(DashboardTest, AllVisualTasksRun) {
  auto table = SmallTaxi(4000);
  NoSampling raw(*table);
  ASSERT_TRUE(raw.Prepare().ok());
  WorkloadOptions wopts;
  wopts.num_queries = 3;
  auto workload = GenerateWorkload(
      *table, {"payment_type"}, wopts);
  ASSERT_TRUE(workload.ok());
  for (VisualTask task : {VisualTask::kHeatmap, VisualTask::kHistogram,
                          VisualTask::kRegression, VisualTask::kMean}) {
    DashboardOptions dopts;
    dopts.task = task;
    dopts.x_column = task == VisualTask::kRegression ? "fare_amount"
                                                     : "pickup_x";
    dopts.y_column = task == VisualTask::kRegression ? "tip_amount"
                                                     : "pickup_y";
    auto report = RunDashboard(&raw, *table, workload.value(), dopts);
    ASSERT_TRUE(report.ok()) << VisualTaskName(task);
    EXPECT_GT(report->AvgVizMillis(), 0.0) << VisualTaskName(task);
  }
}

}  // namespace
}  // namespace tabula

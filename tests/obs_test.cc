#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <variant>
#include <vector>

#include "common/thread_pool.h"
#include "core/tabula.h"
#include "data/taxi_gen.h"
#include "loss/loss_registry.h"
#include "obs/export.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "serve/query_server.h"

namespace tabula {
namespace {

int64_t IntAttr(const SpanRecord& rec, const std::string& key) {
  const AttrValue* v = rec.FindAttribute(key);
  EXPECT_NE(v, nullptr) << "missing attribute " << key;
  if (v == nullptr || !std::holds_alternative<int64_t>(*v)) return -1;
  return std::get<int64_t>(*v);
}

const SpanRecord* FindSpan(const std::vector<SpanRecord>& spans,
                           const std::string& name) {
  for (const auto& rec : spans) {
    if (rec.name == name) return &rec;
  }
  return nullptr;
}

// ---------- core tracer semantics ----------

TEST(TracerTest, DisabledTracerProducesInertSpans) {
  Tracer tracer(TracerOptions{TraceMode::kDisabled, 16});
  EXPECT_FALSE(tracer.enabled());
  Span span = tracer.StartSpan("anything");
  EXPECT_FALSE(span.recording());
  EXPECT_EQ(span.id(), 0u);
  span.SetAttribute("k", int64_t{1});  // must be a no-op, not a crash
  EXPECT_EQ(span.End(), 0.0);
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.recorder().total_recorded(), 0u);
}

TEST(TracerTest, OnDemandRecordsOnlyOptInsAndTheirChildren) {
  Tracer tracer(TracerOptions{TraceMode::kOnDemand, 16});
  // Not opted in, no parent: inert.
  EXPECT_FALSE(tracer.StartSpan("plain").recording());
  // Opted in: records.
  Span root = tracer.StartSpan("root", 0, /*opt_in=*/true);
  EXPECT_TRUE(root.recording());
  // Child of a recorded span records without its own opt-in — this is
  // what carries one traced request end-to-end through the stack.
  Span child = tracer.StartSpan("child", root.id());
  EXPECT_TRUE(child.recording());
  child.End();
  root.End();
  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "child");
  EXPECT_EQ(spans[1].name, "root");
  EXPECT_EQ(spans[0].parent_id, spans[1].span_id);
}

TEST(TracerTest, EndReturnsDurationAndIsIdempotent) {
  Tracer tracer;
  Span span = tracer.StartSpan("timed");
  double first = span.End();
  EXPECT_GE(first, 0.0);
  EXPECT_EQ(span.End(), first);  // second End() returns the same value
  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);  // recorded exactly once
  EXPECT_NEAR(spans[0].DurationMillis(), first, 1e-9);
}

TEST(TracerTest, SpanIdsAreUniqueAndNonZero) {
  Tracer tracer;
  Span a = tracer.StartSpan("a");
  Span b = tracer.StartSpan("b");
  EXPECT_NE(a.id(), 0u);
  EXPECT_NE(b.id(), 0u);
  EXPECT_NE(a.id(), b.id());
}

TEST(TraceRecorderTest, RingEvictsOldestFirst) {
  Tracer tracer(TracerOptions{TraceMode::kAll, 3});
  for (int i = 0; i < 5; ++i) {
    tracer.StartSpan("span" + std::to_string(i)).End();
  }
  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);  // capacity bound holds
  EXPECT_EQ(spans[0].name, "span2");
  EXPECT_EQ(spans[1].name, "span3");
  EXPECT_EQ(spans[2].name, "span4");
  EXPECT_EQ(tracer.recorder().total_recorded(), 5u);
  EXPECT_EQ(tracer.recorder().dropped(), 2u);
}

TEST(TracerTest, ParentChildLinkageAcrossThreadPoolHop) {
  Tracer tracer;
  ThreadPool pool(4);
  Span root = tracer.StartSpan("fanout");
  const uint64_t root_id = root.id();
  // The id is a plain integer, so handing it to pool tasks is the whole
  // cross-thread propagation story.
  pool.ParallelFor(8, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      Span child = tracer.StartSpan("task", root_id);
      child.SetAttribute("index", i);
    }
  });
  root.End();
  auto spans = tracer.Snapshot();
  auto subtree = SpanSubtree(spans, root_id);
  ASSERT_EQ(subtree.size(), 9u);  // root + 8 children
  size_t children = 0;
  for (const auto& rec : subtree) {
    if (rec.parent_id == root_id) ++children;
  }
  EXPECT_EQ(children, 8u);
}

TEST(SpanSubtreeTest, ExtractsOnlyTheRequestedTree) {
  Tracer tracer;
  Span a = tracer.StartSpan("a");
  Span a1 = tracer.StartSpan("a1", a.id());
  Span other = tracer.StartSpan("other");
  Span a1x = tracer.StartSpan("a1x", a1.id());
  a1x.End();
  other.End();
  a1.End();
  uint64_t a_id = a.id();
  a.End();
  auto subtree = SpanSubtree(tracer.Snapshot(), a_id);
  ASSERT_EQ(subtree.size(), 3u);
  EXPECT_EQ(FindSpan(subtree, "other"), nullptr);
  EXPECT_NE(FindSpan(subtree, "a1x"), nullptr);
}

// ---------- stack instrumentation ----------

class ObsStackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TaxiGeneratorOptions gen;
    gen.num_rows = 20000;
    gen.seed = 91;
    table_ = TaxiGenerator(gen).Generate();
    auto loss = MakeLossFunction("mean_loss", {.columns = {"fare_amount"}});
    ASSERT_TRUE(loss.ok());
    options_.cubed_attributes = {"payment_type", "rate_code"};
    options_.owned_loss = std::move(loss).value();
    options_.threshold = 0.05;
    options_.keep_maintenance_state = true;
  }

  std::unique_ptr<Table> table_;
  TabulaOptions options_;
};

TEST_F(ObsStackTest, InitStatsAreExactlyTheInitSpanDurations) {
  Tracer tracer;
  options_.tracer = &tracer;
  auto tabula = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(tabula.ok());
  const TabulaInitStats& stats = tabula.value()->init_stats();
  const auto& trace = tabula.value()->init_trace();

  const SpanRecord* init = FindSpan(trace, "tabula.init");
  const SpanRecord* global = FindSpan(trace, "tabula.init.global_sample");
  const SpanRecord* dry = FindSpan(trace, "tabula.init.dry_run");
  const SpanRecord* real = FindSpan(trace, "tabula.init.real_run");
  const SpanRecord* sel = FindSpan(trace, "tabula.init.selection");
  ASSERT_NE(init, nullptr);
  ASSERT_NE(global, nullptr);
  ASSERT_NE(dry, nullptr);
  ASSERT_NE(real, nullptr);
  ASSERT_NE(sel, nullptr);

  // Not approximately: the stats ARE the span durations.
  EXPECT_EQ(stats.total_millis, init->DurationMillis());
  EXPECT_EQ(stats.global_sample_millis, global->DurationMillis());
  EXPECT_EQ(stats.dry_run_millis, dry->DurationMillis());
  EXPECT_EQ(stats.real_run_millis, real->DurationMillis());
  EXPECT_EQ(stats.selection_millis, sel->DurationMillis());

  // Every stage is a child of the init root and carries its key counts.
  for (const SpanRecord* stage : {global, dry, real, sel}) {
    EXPECT_EQ(stage->parent_id, init->span_id);
  }
  EXPECT_EQ(IntAttr(*init, "iceberg_cells"),
            static_cast<int64_t>(stats.iceberg_cells));
  EXPECT_EQ(IntAttr(*dry, "rows_scanned"),
            static_cast<int64_t>(table_->num_rows()));
}

TEST_F(ObsStackTest, InitTracePopulatedEvenWithoutExternalTracer) {
  auto tabula = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(tabula.ok());
  // No tracer attached, but the stage spans (and span-derived stats)
  // exist anyway via the internal fallback tracer.
  EXPECT_EQ(tabula.value()->init_trace().size(), 5u);
  EXPECT_GT(tabula.value()->init_stats().total_millis, 0.0);
}

TEST_F(ObsStackTest, QueryAndRefreshEmitSpans) {
  Tracer tracer;
  options_.tracer = &tracer;
  auto tabula = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(tabula.ok());
  tracer.Clear();

  QueryRequest request(
      {{"payment_type", CompareOp::kEq, Value("Cash")}});
  auto response = tabula.value()->Query(request);
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->span_id, 0u);
  // Span-derived latency is the reported latency.
  auto spans = tracer.Snapshot();
  const SpanRecord* qspan = FindSpan(spans, "tabula.query");
  ASSERT_NE(qspan, nullptr);
  EXPECT_EQ(qspan->span_id, response->span_id);
  EXPECT_EQ(qspan->DurationMillis(), response->result.data_system_millis);
  EXPECT_EQ(IntAttr(*qspan, "terms"), 1);

  tracer.Clear();
  Tabula::RefreshStats stats;
  ASSERT_TRUE(tabula.value()->Refresh(&stats).ok());
  auto refresh_spans = tracer.Snapshot();
  const SpanRecord* rspan = FindSpan(refresh_spans, "tabula.refresh");
  ASSERT_NE(rspan, nullptr);
  EXPECT_EQ(rspan->DurationMillis(), stats.millis);
  EXPECT_EQ(IntAttr(*rspan, "new_rows"), 0);
}

TEST_F(ObsStackTest, ServeSpansLinkServerToMiddleware) {
  Tracer tracer;
  options_.tracer = &tracer;
  auto tabula = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(tabula.ok());
  tracer.Clear();

  QueryServerOptions sopts;
  sopts.tracer = &tracer;
  QueryServer server(tabula.value().get(), sopts);

  QueryRequest request(
      {{"payment_type", CompareOp::kEq, Value("Cash")}});
  auto answer = server.Query(request);
  ASSERT_TRUE(answer.ok());
  ASSERT_NE(answer->span_id, 0u);

  auto subtree = SpanSubtree(tracer.Snapshot(), answer->span_id);
  const SpanRecord* serve = FindSpan(subtree, "serve.query");
  const SpanRecord* inner = FindSpan(subtree, "tabula.query");
  ASSERT_NE(serve, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->parent_id, serve->span_id);
  EXPECT_EQ(serve->DurationMillis(), answer->total_millis);

  // Cache hit: a serve span, but no middleware child.
  auto hit = server.Query(request);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);
  auto hit_tree = SpanSubtree(tracer.Snapshot(), hit->span_id);
  ASSERT_EQ(hit_tree.size(), 1u);
  const AttrValue* cache_attr = hit_tree[0].FindAttribute("cache_hit");
  ASSERT_NE(cache_attr, nullptr);
  EXPECT_TRUE(std::get<bool>(*cache_attr));
}

TEST_F(ObsStackTest, BatchSpansParentUnderOneBatchSpan) {
  Tracer tracer;
  auto tabula = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(tabula.ok());
  tracer.Clear();

  QueryServerOptions sopts;
  sopts.tracer = &tracer;
  QueryServer server(tabula.value().get(), sopts);

  std::vector<QueryRequest> requests;
  requests.emplace_back(std::vector<PredicateTerm>{
      {"payment_type", CompareOp::kEq, Value("Cash")}});
  requests.emplace_back(std::vector<PredicateTerm>{
      {"payment_type", CompareOp::kEq, Value("Credit")}});
  auto batch = server.BatchQuery(requests);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 2u);

  auto spans = tracer.Snapshot();
  const SpanRecord* batch_span = FindSpan(spans, "serve.batch");
  ASSERT_NE(batch_span, nullptr);
  EXPECT_EQ(IntAttr(*batch_span, "cells"), 2);
  // Each item's serve.query span crossed the ThreadPool hop with the
  // batch span as parent.
  for (const auto& item : *batch) {
    ASSERT_TRUE(item.status.ok());
    ASSERT_NE(item.answer.span_id, 0u);
    const SpanRecord* item_span = nullptr;
    for (const auto& rec : spans) {
      if (rec.span_id == item.answer.span_id) item_span = &rec;
    }
    ASSERT_NE(item_span, nullptr);
    EXPECT_EQ(item_span->parent_id, batch_span->span_id);
  }
}

TEST_F(ObsStackTest, OnDemandTracesOnlyOptedInRequests) {
  Tracer tracer(TracerOptions{TraceMode::kOnDemand, 256});
  options_.tracer = &tracer;
  auto tabula = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(tabula.ok());
  tracer.Clear();

  QueryServerOptions sopts;
  sopts.tracer = &tracer;
  sopts.enable_cache = false;
  QueryServer server(tabula.value().get(), sopts);

  QueryRequest plain(
      {{"payment_type", CompareOp::kEq, Value("Cash")}});
  auto untraced = server.Query(plain);
  ASSERT_TRUE(untraced.ok());
  EXPECT_EQ(untraced->span_id, 0u);
  EXPECT_TRUE(tracer.Snapshot().empty());

  QueryRequest traced = plain;
  traced.trace = true;
  auto answer = server.Query(traced);
  ASSERT_TRUE(answer.ok());
  EXPECT_NE(answer->span_id, 0u);
  // The opt-in propagated through to the middleware span.
  auto subtree = SpanSubtree(tracer.Snapshot(), answer->span_id);
  EXPECT_NE(FindSpan(subtree, "tabula.query"), nullptr);
}

TEST_F(ObsStackTest, SlowQueryLogCapturesKeyAndSpanTree) {
  Tracer tracer;
  options_.tracer = &tracer;
  auto tabula = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(tabula.ok());

  QueryServerOptions sopts;
  sopts.tracer = &tracer;
  sopts.slow_query_ms = 1e-6;  // everything is "slow"
  sopts.enable_cache = false;
  QueryServer server(tabula.value().get(), sopts);

  QueryRequest request(
      {{"payment_type", CompareOp::kEq, Value("Cash")}});
  auto answer = server.Query(request);
  ASSERT_TRUE(answer.ok());

  ASSERT_TRUE(server.slow_query_log().enabled());
  auto entries = server.slow_query_log().Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].total_millis, answer->total_millis);
  EXPECT_EQ(entries[0].span_id, answer->span_id);
  EXPECT_NE(entries[0].predicate_key.find("payment_type"),
            std::string::npos);
  // The rendered tree names both layers.
  EXPECT_NE(entries[0].span_tree.find("serve.query"), std::string::npos);
  EXPECT_NE(entries[0].span_tree.find("tabula.query"), std::string::npos);
  EXPECT_NE(server.slow_query_log().RenderText().find("serve.query"),
            std::string::npos);
}

TEST_F(ObsStackTest, SlowQueryLogDisabledByDefault) {
  auto tabula = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(tabula.ok());
  QueryServer server(tabula.value().get());
  auto answer = server.Query(QueryRequest{});
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(server.slow_query_log().enabled());
  EXPECT_EQ(server.slow_query_log().total_logged(), 0u);
}

// ---------- exporters ----------

TEST(ExportTest, RenderSpanTreeIndentsChildren) {
  Tracer tracer;
  Span root = tracer.StartSpan("serve.query");
  Span child = tracer.StartSpan("tabula.query", root.id());
  child.SetAttribute("terms", int64_t{2});
  child.End();
  root.End();
  std::string text = RenderSpanTree(tracer.Snapshot());
  EXPECT_NE(text.find("serve.query"), std::string::npos);
  EXPECT_NE(text.find("\n  tabula.query"), std::string::npos);  // indented
  EXPECT_NE(text.find("terms=2"), std::string::npos);
}

TEST(ExportTest, OtlpJsonHasSpanAndParentIds) {
  Tracer tracer;
  Span root = tracer.StartSpan("root");
  Span child = tracer.StartSpan("child", root.id());
  child.SetAttribute("rows", int64_t{42});
  child.SetAttribute("note", "hi \"there\"");
  child.End();
  root.End();
  std::string json = ToOtlpJson(tracer.Snapshot(), "tabula-test");
  EXPECT_NE(json.find("\"resourceSpans\""), std::string::npos);
  EXPECT_NE(json.find("\"scopeSpans\""), std::string::npos);
  EXPECT_NE(json.find("\"tabula-test\""), std::string::npos);
  EXPECT_NE(json.find("\"spanId\""), std::string::npos);
  EXPECT_NE(json.find("\"parentSpanId\""), std::string::npos);
  EXPECT_NE(json.find("\"traceId\""), std::string::npos);
  // OTLP JSON encodes int attribute values as strings.
  EXPECT_NE(json.find("\"intValue\":\"42\""), std::string::npos);
  // Quotes inside string attributes survive escaped.
  EXPECT_NE(json.find("hi \\\"there\\\""), std::string::npos);
  EXPECT_NE(json.find("startTimeUnixNano"), std::string::npos);
}

TEST(ExportTest, SpansOfOneRequestShareATraceId) {
  Tracer tracer;
  Span root = tracer.StartSpan("root");
  Span child = tracer.StartSpan("child", root.id());
  child.End();
  root.End();
  std::string json = ToOtlpJson(tracer.Snapshot());
  // Both spans derive their traceId from the root ancestor: the root's
  // trace id (32 hex chars built from its span id) must appear twice.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(tracer.Snapshot()[1].span_id));
  std::string root_hex(buf);
  size_t first = json.find(root_hex);
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(json.find(root_hex, first + 1), std::string::npos);
}

}  // namespace
}  // namespace tabula

/// Tests of the deterministic fault-injection registry itself, plus the
/// fault-seam regression suite: injected persistence failures must be
/// atomic (a failed Save leaves the previous file intact; Load never
/// yields a half-built cube), a failed Refresh must leave the instance
/// untouched, and injected serve-path errors must surface as Status.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <vector>

#include "core/tabula.h"
#include "data/synthetic_gen.h"
#include "loss/mean_loss.h"
#include "serve/query_server.h"
#include "testing/fault_injection.h"

namespace tabula {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Trigger pattern of `hits` sequential hits at an armed point.
std::vector<bool> TriggerPattern(const FaultSpec& spec, size_t hits) {
  FaultInjector& fi = FaultInjector::Global();
  fi.DisarmAll();
  fi.Arm("test.point", spec);
  std::vector<bool> pattern;
  for (size_t i = 0; i < hits; ++i) {
    pattern.push_back(!fi.Hit("test.point").ok());
  }
  fi.DisarmAll();
  return pattern;
}

TEST(FaultInjector, UnarmedPointIsAlwaysOk) {
  ScopedFaultClear guard;
  EXPECT_FALSE(FaultInjector::AnyArmed());
  EXPECT_TRUE(FaultInjector::Global().Hit("never.armed").ok());
}

TEST(FaultInjector, AnyArmedTracksArmAndDisarm) {
  ScopedFaultClear guard;
  EXPECT_FALSE(FaultInjector::AnyArmed());
  FaultInjector::Global().Arm("a", FaultSpec{});
  EXPECT_TRUE(FaultInjector::AnyArmed());
  FaultInjector::Global().Arm("b", FaultSpec{});
  FaultInjector::Global().Disarm("a");
  EXPECT_TRUE(FaultInjector::AnyArmed());
  FaultInjector::Global().Disarm("b");
  EXPECT_FALSE(FaultInjector::AnyArmed());
}

TEST(FaultInjector, EveryNthTriggersExactlyOnSchedule) {
  ScopedFaultClear guard;
  FaultSpec spec;
  spec.every_nth = 3;
  std::vector<bool> pattern = TriggerPattern(spec, 9);
  std::vector<bool> expected = {false, false, true, false, false,
                                true,  false, false, true};
  EXPECT_EQ(pattern, expected);
}

TEST(FaultInjector, MaxTriggersStopsInjection) {
  ScopedFaultClear guard;
  FaultSpec spec;
  spec.every_nth = 1;
  spec.max_triggers = 2;
  std::vector<bool> pattern = TriggerPattern(spec, 5);
  std::vector<bool> expected = {true, true, false, false, false};
  EXPECT_EQ(pattern, expected);
}

TEST(FaultInjector, ProbabilityTriggeringIsSeedDeterministic) {
  ScopedFaultClear guard;
  FaultSpec spec;
  spec.probability = 0.5;
  spec.seed = 1234;
  std::vector<bool> first = TriggerPattern(spec, 64);
  std::vector<bool> second = TriggerPattern(spec, 64);
  // Same seed → identical per-hit decisions (the decision hashes
  // (seed, hit index); no shared RNG stream is consumed).
  EXPECT_EQ(first, second);
  size_t triggers = 0;
  for (bool b : first) triggers += b;
  EXPECT_GT(triggers, size_t{16});
  EXPECT_LT(triggers, size_t{48});

  spec.seed = 99;
  std::vector<bool> other = TriggerPattern(spec, 64);
  EXPECT_NE(first, other);  // a different seed reshuffles the schedule
}

TEST(FaultInjector, DelayOnlyFaultNeverFails) {
  ScopedFaultClear guard;
  FaultSpec spec;
  spec.fail = false;
  spec.delay_ms = 0.1;
  FaultInjector::Global().Arm("test.delay", spec);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(FaultInjector::Global().Hit("test.delay").ok());
  }
  FaultInjector::PointStats stats =
      FaultInjector::Global().StatsFor("test.delay");
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.triggers, 3u);
}

TEST(FaultInjector, InjectedStatusCarriesCodeAndPointName) {
  ScopedFaultClear guard;
  FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  FaultInjector::Global().Arm("test.code", spec);
  Status st = FaultInjector::Global().Hit("test.code");
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_NE(st.message().find("test.code"), std::string::npos);
}

/// -------------------------------------------------------------------
/// Seam regressions against a real cube.
/// -------------------------------------------------------------------

class FaultSeamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().DisarmAll();
    SyntheticGeneratorOptions gen;
    gen.num_rows = 2500;
    gen.seed = 71;
    gen.cell_spread = 1.3;
    gen.columns = {{"c0", 3, 0.7}, {"c1", 4, 0.0}};
    table_ = SyntheticGenerator(gen).Generate();

    // Donor rows for refresh tests: a different seed shifts the latent
    // cell parameters, so appends change cell statistics.
    gen.seed = 72;
    gen.num_rows = 1200;
    gen.cell_spread = 2.0;
    donor_ = SyntheticGenerator(gen).Generate();

    loss_ = std::make_unique<MeanLoss>("value");
    options_.cubed_attributes = {"c0", "c1"};
    options_.loss = loss_.get();
    options_.threshold = 0.05;
    options_.keep_maintenance_state = true;

    auto t = Tabula::Initialize(*table_, options_);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    tabula_ = std::move(t).value();
    ASSERT_GT(tabula_->cube_table().size(), 0u);
  }

  void TearDown() override { FaultInjector::Global().DisarmAll(); }

  std::vector<std::vector<RowId>> AnswerProbe(const Tabula& t) {
    std::vector<std::vector<PredicateTerm>> cells = {
        {},
        {{"c0", CompareOp::kEq, Value("c0_0")}},
        {{"c0", CompareOp::kEq, Value("c0_1")},
         {"c1", CompareOp::kEq, Value("c1_0")}},
    };
    std::vector<std::vector<RowId>> out;
    for (const auto& where : cells) {
      auto r = t.Query(QueryRequest(where));
      EXPECT_TRUE(r.ok());
      out.push_back(r.value().result.sample.ToRowIds());
    }
    return out;
  }

  void AppendDonorRows(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(
          table_->AppendRowFrom(*donor_, static_cast<RowId>(i)).ok());
    }
  }

  std::unique_ptr<Table> table_;
  std::unique_ptr<Table> donor_;
  std::unique_ptr<MeanLoss> loss_;
  TabulaOptions options_;
  std::unique_ptr<Tabula> tabula_;
};

TEST_F(FaultSeamTest, SaveFailingMidWriteLeavesPriorFileIntact) {
  ScopedFaultClear guard;
  const std::string path = TempPath("tabula_fault_save.cube");
  std::filesystem::remove(path);
  ASSERT_TRUE(tabula_->Save(path).ok());
  auto baseline = Tabula::Load(*table_, options_, path);
  ASSERT_TRUE(baseline.ok());
  std::vector<std::vector<RowId>> want = AnswerProbe(*baseline.value());

  // Every write fault fails the NEXT Save mid-stream...
  FaultSpec spec;
  spec.code = StatusCode::kIOError;
  FaultInjector::Global().Arm("persistence.write", spec);
  Status st = tabula_->Save(path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_GT(FaultInjector::Global().StatsFor("persistence.write").triggers,
            0u);
  FaultInjector::Global().DisarmAll();

  // ...but the previous file is untouched (temp-file + rename): it
  // still loads and answers exactly as before, and no temp litter.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  auto reloaded = Tabula::Load(*table_, options_, path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(AnswerProbe(*reloaded.value()), want);
  std::filesystem::remove(path);
}

TEST_F(FaultSeamTest, SaveFailingOnOpenLeavesNoFile) {
  ScopedFaultClear guard;
  const std::string path = TempPath("tabula_fault_open.cube");
  std::filesystem::remove(path);
  FaultInjector::Global().Arm("persistence.open", FaultSpec{});
  EXPECT_FALSE(tabula_->Save(path).ok());
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(FaultSeamTest, LoadOnTruncatedFileIsDataLossNeverACube) {
  const std::string path = TempPath("tabula_fault_trunc.cube");
  std::filesystem::remove(path);
  ASSERT_TRUE(tabula_->Save(path).ok());
  std::string full;
  {
    std::ifstream in(path, std::ios::binary);
    full.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(full.size(), 64u);

  // Truncate at several depths — rewriting the original bytes each
  // time, since resize_file growing a shrunk file would zero-pad it
  // instead. Every prefix must fail cleanly: a Status, never a crash
  // or a partially-valid cube.
  for (double frac : {0.15, 0.5, 0.9, 0.99}) {
    const auto keep =
        static_cast<size_t>(static_cast<double>(full.size()) * frac);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(full.data(), static_cast<std::streamsize>(keep));
    }
    auto loaded = Tabula::Load(*table_, options_, path);
    ASSERT_FALSE(loaded.ok()) << "frac=" << frac;
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
        << "frac=" << frac << ": " << loaded.status().ToString();
  }

  // Flip bytes mid-file (inside the cell records): the loader must
  // reject the corruption, not build a cube from garbage.
  {
    std::string corrupt = full;
    for (size_t i = corrupt.size() / 2; i < corrupt.size() / 2 + 24; ++i) {
      corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5a);
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
  }
  EXPECT_FALSE(Tabula::Load(*table_, options_, path).ok());
  std::filesystem::remove(path);
}

TEST_F(FaultSeamTest, LoadOnInjectedReadFaultSurfacesStatus) {
  ScopedFaultClear guard;
  const std::string path = TempPath("tabula_fault_read.cube");
  std::filesystem::remove(path);
  ASSERT_TRUE(tabula_->Save(path).ok());
  FaultSpec spec;
  spec.code = StatusCode::kIOError;
  FaultInjector::Global().Arm("persistence.read", spec);
  auto loaded = Tabula::Load(*table_, options_, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  FaultInjector::Global().DisarmAll();
  EXPECT_TRUE(Tabula::Load(*table_, options_, path).ok());
  std::filesystem::remove(path);
}

TEST_F(FaultSeamTest, FailedRefreshLeavesCubeUntouchedAndRecovers) {
  ScopedFaultClear guard;
  AppendDonorRows(600);
  std::vector<std::vector<RowId>> before = AnswerProbe(*tabula_);
  const uint64_t gen = tabula_->generation();
  const size_t cells = tabula_->cube_table().size();

  FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  FaultInjector::Global().Arm("refresh.begin", spec);
  Status st = tabula_->Refresh();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);

  // Atomicity: generation, cube shape, and answers all unchanged.
  EXPECT_EQ(tabula_->generation(), gen);
  EXPECT_EQ(tabula_->cube_table().size(), cells);
  EXPECT_EQ(AnswerProbe(*tabula_), before);

  // Disarm and retry: the same appended rows refresh cleanly.
  FaultInjector::Global().DisarmAll();
  ASSERT_TRUE(tabula_->Refresh().ok());
  EXPECT_EQ(tabula_->generation(), gen + 1);
}

TEST_F(FaultSeamTest, FaultDuringCellResamplingIsAtomicToo) {
  ScopedFaultClear guard;
  // Appending skewed donor rows changes cell statistics enough that the
  // refresh must (re)sample at least one cell — which is where
  // refresh.sample sits, AFTER classification already computed.
  AppendDonorRows(1000);
  std::vector<std::vector<RowId>> before = AnswerProbe(*tabula_);
  const uint64_t gen = tabula_->generation();

  FaultSpec spec;
  spec.code = StatusCode::kIOError;
  FaultInjector::Global().Arm("refresh.sample", spec);
  Status st = tabula_->Refresh();
  ASSERT_FALSE(st.ok())
      << "expected the refresh to need sampling work; if this fires, "
         "the donor data no longer creates sampling work";
  EXPECT_GT(FaultInjector::Global().StatsFor("refresh.sample").triggers, 0u);
  EXPECT_EQ(tabula_->generation(), gen);
  EXPECT_EQ(AnswerProbe(*tabula_), before);

  FaultInjector::Global().DisarmAll();
  Tabula::RefreshStats stats;
  ASSERT_TRUE(tabula_->Refresh(&stats).ok());
  EXPECT_EQ(tabula_->generation(), gen + 1);
  EXPECT_GT(stats.new_iceberg_cells + stats.resampled_cells +
                stats.dropped_iceberg_cells,
            0u);
}

TEST_F(FaultSeamTest, ServerSurfacesInjectedExecuteErrorsDeterministically) {
  ScopedFaultClear guard;
  QueryServerOptions sopt;
  sopt.enable_cache = false;  // every query reaches the execute seam
  QueryServer server(tabula_.get(), sopt);

  FaultSpec spec;
  spec.every_nth = 2;
  spec.code = StatusCode::kInternal;
  FaultInjector::Global().Arm("serve.execute", spec);

  std::vector<PredicateTerm> where = {
      {"c0", CompareOp::kEq, Value("c0_0")}};
  std::vector<bool> failed;
  for (int i = 0; i < 6; ++i) {
    Result<ServeAnswer> r = server.Query(QueryRequest(where));
    failed.push_back(!r.ok());
    if (!r.ok()) EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  }
  std::vector<bool> expected = {false, true, false, true, false, true};
  EXPECT_EQ(failed, expected);
  EXPECT_EQ(server.metrics().counter("serve_errors").value(), 3u);
  EXPECT_EQ(server.metrics().counter("serve_queries_total").value(), 6u);
}

TEST_F(FaultSeamTest, ThreadPoolDelaySeamFiresWithoutFailing) {
  ScopedFaultClear guard;
  FaultSpec spec;
  spec.fail = false;
  spec.delay_ms = 0.01;
  FaultInjector::Global().Arm("threadpool.dispatch", spec);
  // Any parallel work crosses the dispatch seam; a delay-only fault
  // must never alter results.
  std::vector<PredicateTerm> everything;
  auto r = tabula_->Query(QueryRequest(everything));
  ASSERT_TRUE(r.ok());
  std::vector<RowId> rows = r.value().result.sample.ToRowIds();
  FaultInjector::Global().DisarmAll();
  auto r2 = tabula_->Query(QueryRequest(everything));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(rows, r2.value().result.sample.ToRowIds());
}

}  // namespace
}  // namespace tabula

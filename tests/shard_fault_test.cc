/// Fault matrix for the sharded engine, at the three shard seams:
///
///  - shard.query: a shard failing during scatter-gather DEGRADES the
///    answer (the global sample stands in for its slice, the shard id
///    lands in `unavailable_shards`, `shard_error` carries the
///    kUnavailable detail) — the request itself still succeeds.
///  - shard.build: a shard failing during Initialize fails the whole
///    init atomically; during Refresh it fails the refresh with the
///    generation and every answer unchanged. Both the Status-returning
///    and the exception-throwing flavors are covered.
///  - shard.merge: same atomicity contract on the merge pass.
///  - persistence.write during a sharded Save: the previous manifest
///    survives byte-for-byte and no .tmp is left behind.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "data/synthetic_gen.h"
#include "data/workload.h"
#include "loss/loss_registry.h"
#include "shard/sharded_tabula.h"
#include "testing/fault_injection.h"

namespace tabula {
namespace {

struct FaultFixture {
  std::unique_ptr<Table> table;
  std::unique_ptr<Table> donor;
  std::vector<std::string> attrs;
  std::shared_ptr<const LossFunction> loss;
  ShardedTabulaOptions options;
};

FaultFixture MakeFixture(uint64_t seed, size_t k) {
  SyntheticGeneratorOptions gen;
  gen.seed = seed * 7919 + 21;
  gen.num_rows = 800;
  gen.cell_spread = 1.1;
  gen.noise = 0.1;
  gen.columns.clear();
  for (size_t c = 0; c < 2; ++c) {
    SyntheticColumnSpec col;
    col.name = "c" + std::to_string(c);
    col.cardinality = 3;
    gen.columns.push_back(col);
  }
  SyntheticGenerator generator(gen);
  FaultFixture f;
  f.table = generator.Generate();
  f.attrs = generator.CategoricalColumns();

  SyntheticGeneratorOptions donor_gen = gen;
  donor_gen.seed = gen.seed + 1;
  donor_gen.num_rows = 200;
  f.donor = SyntheticGenerator(donor_gen).Generate();

  LossParams params;
  params.columns = {"value"};
  auto loss = MakeLossFunction("mean_loss", params);
  EXPECT_TRUE(loss.ok());
  f.loss = std::shared_ptr<const LossFunction>(std::move(loss).value());

  f.options.base.cubed_attributes = f.attrs;
  f.options.base.owned_loss = f.loss;
  f.options.base.threshold = 0.07;
  f.options.base.seed = seed;
  f.options.num_shards = k;
  f.options.partition = ShardPartition::kHash;
  return f;
}

std::vector<WorkloadQuery> Queries(const FaultFixture& f, size_t n,
                                   uint64_t seed) {
  WorkloadOptions wopt;
  wopt.num_queries = n;
  wopt.seed = seed;
  auto qs = GenerateWorkload(*f.table, f.attrs, wopt);
  EXPECT_TRUE(qs.ok());
  return std::move(qs).value();
}

TEST(ShardFault, QueryShardFailureDegradesAnswerInsteadOfFailing) {
  ScopedFaultClear guard;
  FaultFixture f = MakeFixture(11, 4);
  auto engine = ShardedTabula::Initialize(*f.table, f.options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const std::vector<WorkloadQuery> qs = Queries(f, 40, 1117);

  FaultSpec spec;
  spec.fail = true;
  spec.every_nth = 1;  // every shard of every fan-out fails
  spec.code = StatusCode::kUnavailable;
  FaultInjector::Global().Arm("shard.query", spec);

  size_t degraded = 0;
  for (const WorkloadQuery& q : qs) {
    auto got = engine.value()->Query(QueryRequest(q.where));
    // The request itself must succeed regardless of shard health.
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const TabulaQueryResult& r = got.value().result;
    if (r.unavailable_shards.empty()) continue;  // override/global path
    ++degraded;
    EXPECT_EQ(r.unavailable_shards.size(), 4u)
        << "every shard was armed to fail";
    EXPECT_FALSE(r.shard_error.ok());
    EXPECT_EQ(r.shard_error.code(), StatusCode::kUnavailable);
    // The global sample stands in for the missing slices.
    EXPECT_GT(r.sample.size(), 0u);
    EXPECT_TRUE(r.from_local_sample);
  }
  ASSERT_GT(degraded, 0u)
      << "the workload never hit a scatter-gathered iceberg cell";
  EXPECT_GE(engine.value()->metrics().counter("shard_degraded_answers")
                .value(),
            degraded);
  EXPECT_GE(engine.value()->metrics().counter("shard_unavailable_total")
                .value(),
            degraded * 4);

  // Disarmed, the same queries answer cleanly again.
  FaultInjector::Global().DisarmAll();
  for (const WorkloadQuery& q : qs) {
    auto got = engine.value()->Query(QueryRequest(q.where));
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got.value().result.unavailable_shards.empty());
    EXPECT_TRUE(got.value().result.shard_error.ok());
  }
}

TEST(ShardFault, BuildFaultFailsInitializeAtomically) {
  ScopedFaultClear guard;
  FaultFixture f = MakeFixture(12, 4);

  FaultSpec spec;
  spec.fail = true;
  spec.every_nth = 1;
  spec.max_triggers = 1;
  spec.code = StatusCode::kIOError;
  FaultInjector::Global().Arm("shard.build", spec);
  auto broken = ShardedTabula::Initialize(*f.table, f.options);
  EXPECT_FALSE(broken.ok());
  EXPECT_EQ(broken.status().code(), StatusCode::kIOError);

  // The exception flavor: a fault thrown out of a pool task must come
  // back as a Status, not crash or deadlock the build.
  FaultSpec throwing;
  throwing.throw_exception = true;
  throwing.every_nth = 1;
  throwing.max_triggers = 1;
  FaultInjector::Global().Arm("shard.build", throwing);
  auto thrown = ShardedTabula::Initialize(*f.table, f.options);
  EXPECT_FALSE(thrown.ok());

  FaultInjector::Global().DisarmAll();
  auto clean = ShardedTabula::Initialize(*f.table, f.options);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_GT(clean.value()->merged_iceberg_cells(), 0u);
}

void RunRefreshAtomicity(const char* point) {
  ScopedFaultClear guard;
  FaultFixture f = MakeFixture(13, 4);
  auto engine = ShardedTabula::Initialize(*f.table, f.options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const std::vector<WorkloadQuery> qs = Queries(f, 10, 1319);
  std::vector<std::vector<RowId>> before;
  for (const WorkloadQuery& q : qs) {
    auto r = engine.value()->Query(QueryRequest(q.where));
    ASSERT_TRUE(r.ok());
    before.push_back(r.value().result.sample.ToRowIds());
  }

  for (size_t r = 0; r < 120; ++r) {
    ASSERT_TRUE(
        f.table->AppendRowFrom(*f.donor, static_cast<RowId>(r)).ok());
  }

  FaultSpec spec;
  spec.fail = true;
  spec.every_nth = 1;
  spec.max_triggers = 2;
  spec.code = StatusCode::kIOError;
  FaultInjector::Global().Arm(point, spec);
  Status st = engine.value()->Refresh();
  EXPECT_FALSE(st.ok()) << point;
  // Atomic: generation unchanged and every answer exactly as before.
  EXPECT_EQ(engine.value()->generation(), 0u);
  for (size_t i = 0; i < qs.size(); ++i) {
    auto r = engine.value()->Query(QueryRequest(qs[i].where));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().result.sample.ToRowIds(), before[i])
        << point << ": failed refresh mutated an answer";
  }

  // Recovery after disarm.
  FaultInjector::Global().DisarmAll();
  st = engine.value()->Refresh();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(engine.value()->generation(), 1u);
}

TEST(ShardFault, BuildFaultFailsRefreshAtomically) {
  RunRefreshAtomicity("shard.build");
}

TEST(ShardFault, MergeFaultFailsRefreshAtomically) {
  RunRefreshAtomicity("shard.merge");
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(ShardFault, FailedSaveLeavesNoPartialManifest) {
  ScopedFaultClear guard;
  FaultFixture f = MakeFixture(14, 4);
  auto engine = ShardedTabula::Initialize(*f.table, f.options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  std::error_code ec;
  std::filesystem::path tmp = std::filesystem::temp_directory_path(ec);
  if (ec) tmp = ".";
  const std::string path = (tmp / "tabula_shard_fault.manifest").string();
  std::filesystem::remove(path, ec);
  std::filesystem::remove(path + ".tmp", ec);

  ASSERT_TRUE(engine.value()->Save(path).ok());
  const std::string good = ReadAll(path);
  ASSERT_FALSE(good.empty());

  FaultSpec spec;
  spec.fail = true;
  spec.every_nth = 2;  // let the header through, then fail mid-write
  spec.max_triggers = 1;
  spec.code = StatusCode::kIOError;
  FaultInjector::Global().Arm("persistence.write", spec);
  Status st = engine.value()->Save(path);
  EXPECT_FALSE(st.ok());
  FaultInjector::Global().DisarmAll();

  // The previous manifest survives byte-for-byte; no temp left behind.
  EXPECT_EQ(ReadAll(path), good);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp", ec));

  // And it still loads into an engine that answers like the live one.
  auto loaded = ShardedTabula::Load(*f.table, f.options, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (const WorkloadQuery& q : Queries(f, 8, 1423)) {
    auto a = loaded.value()->Query(QueryRequest(q.where));
    auto b = engine.value()->Query(QueryRequest(q.where));
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value().result.sample.ToRowIds(),
              b.value().result.sample.ToRowIds());
  }
  std::filesystem::remove(path, ec);
}

}  // namespace
}  // namespace tabula

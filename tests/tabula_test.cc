#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/tabula.h"
#include "data/taxi_gen.h"
#include "data/workload.h"
#include "loss/mean_loss.h"
#include "loss/min_dist_loss.h"

namespace tabula {
namespace {

class TabulaEndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TaxiGeneratorOptions gen;
    gen.num_rows = 60000;
    gen.seed = 3;
    table_ = TaxiGenerator(gen).Generate().release();
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }

  static TabulaOptions BaseOptions(const LossFunction* loss, double theta) {
    TabulaOptions opts;
    opts.cubed_attributes = {"payment_type", "rate_code", "passenger_count"};
    opts.loss = loss;
    opts.threshold = theta;
    return opts;
  }

  static const Table* table_;
};

const Table* TabulaEndToEnd::table_ = nullptr;

TEST_F(TabulaEndToEnd, InitializeProducesPartialCube) {
  MeanLoss loss("fare_amount");
  auto tab = Tabula::Initialize(*table_, BaseOptions(&loss, 0.05));
  ASSERT_TRUE(tab.ok()) << tab.status().ToString();
  const auto& stats = tab.value()->init_stats();
  EXPECT_GT(stats.total_cells, 0u);
  EXPECT_GT(stats.iceberg_cells, 0u);
  // Partial materialization: not every cell is iceberg.
  EXPECT_LT(stats.iceberg_cells, stats.total_cells);
  EXPECT_GT(stats.global_sample_tuples, 1000u);
  EXPECT_LE(stats.global_sample_tuples, 1100u);
  EXPECT_GT(stats.representative_samples, 0u);
  EXPECT_LE(stats.representative_samples, stats.iceberg_cells);
  EXPECT_GT(stats.dry_run_millis, 0.0);
}

TEST_F(TabulaEndToEnd, DeterministicGuaranteeOnWorkload) {
  // The headline property (Sections II–IV): for EVERY query, the loss of
  // the returned sample vs the true query answer is <= θ.
  MeanLoss loss("fare_amount");
  const double theta = 0.05;
  auto tab = Tabula::Initialize(*table_, BaseOptions(&loss, theta));
  ASSERT_TRUE(tab.ok());

  WorkloadOptions wopts;
  wopts.num_queries = 60;
  auto workload = GenerateWorkload(
      *table_, tab.value()->options().cubed_attributes, wopts);
  ASSERT_TRUE(workload.ok());

  for (const auto& query : workload.value()) {
    auto answer = tab.value()->Query(query.where);
    ASSERT_TRUE(answer.ok()) << query.ToString();
    // True query answer by scanning the raw table.
    auto pred = BoundPredicate::Bind(*table_, query.where);
    ASSERT_TRUE(pred.ok());
    DatasetView raw(table_, pred->FilterAll());
    ASSERT_FALSE(raw.empty()) << query.ToString();
    double actual = loss.Loss(raw, answer->sample).value();
    EXPECT_LE(actual, theta) << query.ToString();
  }
}

TEST_F(TabulaEndToEnd, HeatmapLossGuarantee) {
  auto loss = MakeHeatmapLoss("pickup_x", "pickup_y");
  const double theta = 1.0 * kNormalizedUnitsPerKm;  // 1 km
  auto tab = Tabula::Initialize(*table_, BaseOptions(loss.get(), theta));
  ASSERT_TRUE(tab.ok()) << tab.status().ToString();

  WorkloadOptions wopts;
  wopts.num_queries = 30;
  wopts.seed = 5;
  auto workload = GenerateWorkload(
      *table_, tab.value()->options().cubed_attributes, wopts);
  ASSERT_TRUE(workload.ok());
  for (const auto& query : workload.value()) {
    auto answer = tab.value()->Query(query.where);
    ASSERT_TRUE(answer.ok());
    auto pred = BoundPredicate::Bind(*table_, query.where);
    ASSERT_TRUE(pred.ok());
    DatasetView raw(table_, pred->FilterAll());
    ASSERT_FALSE(raw.empty());
    EXPECT_LE(loss->Loss(raw, answer->sample).value(), theta)
        << query.ToString();
  }
}

TEST_F(TabulaEndToEnd, IcebergQueriesReturnLocalSamples) {
  // At the paper's tightest heat-map threshold (0.25 km ≈ 0.004
  // normalized) the ~1000-tuple global sample cannot cover every cell's
  // spatial footprint, so iceberg cells must exist and queries hitting
  // them must be served from materialized local samples.
  auto loss = MakeHeatmapLoss("pickup_x", "pickup_y");
  const double theta = 0.25 * kNormalizedUnitsPerKm;
  auto tab = Tabula::Initialize(*table_, BaseOptions(loss.get(), theta));
  ASSERT_TRUE(tab.ok());
  EXPECT_GT(tab.value()->init_stats().iceberg_cells, 0u);

  WorkloadOptions wopts;
  wopts.num_queries = 40;
  wopts.seed = 77;
  auto workload = GenerateWorkload(
      *table_, tab.value()->options().cubed_attributes, wopts);
  ASSERT_TRUE(workload.ok());
  size_t local_hits = 0;
  for (const auto& query : workload.value()) {
    auto answer = tab.value()->Query(query.where);
    ASSERT_TRUE(answer.ok());
    if (answer->from_local_sample) ++local_hits;
  }
  EXPECT_GT(local_hits, 0u);
}

TEST_F(TabulaEndToEnd, NonIcebergQueryReturnsGlobalSample) {
  MeanLoss loss("fare_amount");
  auto tab = Tabula::Initialize(*table_, BaseOptions(&loss, 0.05));
  ASSERT_TRUE(tab.ok());
  // The unfiltered query ("All" cell) matches the global distribution.
  auto answer = tab.value()->Query(QueryRequest{});
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->result.from_local_sample);
  EXPECT_EQ(answer->result.sample.size(),
            tab.value()->global_sample().size());
}

TEST_F(TabulaEndToEnd, UnknownFilterValueIsEmptyCell) {
  MeanLoss loss("fare_amount");
  auto tab = Tabula::Initialize(*table_, BaseOptions(&loss, 0.05));
  ASSERT_TRUE(tab.ok());
  auto answer = tab.value()->Query(
      {{"payment_type", CompareOp::kEq, Value("Barter")}});
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->empty_cell);
  EXPECT_EQ(answer->sample.size(), 0u);
}

TEST_F(TabulaEndToEnd, RejectsNonCubedAttribute) {
  MeanLoss loss("fare_amount");
  auto tab = Tabula::Initialize(*table_, BaseOptions(&loss, 0.05));
  ASSERT_TRUE(tab.ok());
  auto answer = tab.value()->Query(
      {{"vendor_name", CompareOp::kEq, Value("CMT")}});
  EXPECT_EQ(answer.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TabulaEndToEnd, RejectsNonEqualityPredicate) {
  MeanLoss loss("fare_amount");
  auto tab = Tabula::Initialize(*table_, BaseOptions(&loss, 0.05));
  ASSERT_TRUE(tab.ok());
  auto answer = tab.value()->Query(
      {{"payment_type", CompareOp::kNe, Value("Cash")}});
  EXPECT_EQ(answer.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TabulaEndToEnd, RejectsDuplicatePredicate) {
  MeanLoss loss("fare_amount");
  auto tab = Tabula::Initialize(*table_, BaseOptions(&loss, 0.05));
  ASSERT_TRUE(tab.ok());
  auto answer =
      tab.value()->Query({{"payment_type", CompareOp::kEq, Value("Cash")},
                          {"payment_type", CompareOp::kEq, Value("Credit")}});
  EXPECT_EQ(answer.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TabulaEndToEnd, InvalidOptionsAreRejected) {
  MeanLoss loss("fare_amount");
  TabulaOptions no_loss = BaseOptions(&loss, 0.05);
  no_loss.loss = nullptr;
  EXPECT_FALSE(Tabula::Initialize(*table_, no_loss).ok());

  TabulaOptions no_attrs = BaseOptions(&loss, 0.05);
  no_attrs.cubed_attributes.clear();
  EXPECT_FALSE(Tabula::Initialize(*table_, no_attrs).ok());

  TabulaOptions bad_theta = BaseOptions(&loss, -1.0);
  EXPECT_FALSE(Tabula::Initialize(*table_, bad_theta).ok());

  MeanLoss bad_col("no_such_column");
  EXPECT_FALSE(Tabula::Initialize(*table_, BaseOptions(&bad_col, 0.05)).ok());
}

TEST_F(TabulaEndToEnd, TabulaStarUsesMoreMemory) {
  MeanLoss loss("fare_amount");
  auto with_sel = Tabula::Initialize(*table_, BaseOptions(&loss, 0.05));
  ASSERT_TRUE(with_sel.ok());
  TabulaOptions star = BaseOptions(&loss, 0.05);
  star.enable_sample_selection = false;
  auto without_sel = Tabula::Initialize(*table_, star);
  ASSERT_TRUE(without_sel.ok());
  EXPECT_LE(with_sel.value()->init_stats().sample_table_bytes,
            without_sel.value()->init_stats().sample_table_bytes);
  EXPECT_EQ(without_sel.value()->init_stats().representative_samples,
            without_sel.value()->init_stats().iceberg_cells);
}

TEST_F(TabulaEndToEnd, SmallerThresholdMoreIcebergCells) {
  MeanLoss loss("fare_amount");
  auto strict = Tabula::Initialize(*table_, BaseOptions(&loss, 0.02));
  auto loose = Tabula::Initialize(*table_, BaseOptions(&loss, 0.20));
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(loose.ok());
  EXPECT_GE(strict.value()->init_stats().iceberg_cells,
            loose.value()->init_stats().iceberg_cells);
  EXPECT_GE(strict.value()->init_stats().TotalBytes(),
            loose.value()->init_stats().TotalBytes());
}

TEST_F(TabulaEndToEnd, Int64CubedAttributeWorksEndToEnd) {
  // Cubed attributes may be integers, not just categoricals; the key
  // encoder builds a value→code map for them.
  Schema schema({{"bucket", DataType::kInt64},
                 {"flag", DataType::kCategorical},
                 {"v", DataType::kDouble}});
  Table table(schema);
  Rng rng(2);
  for (int i = 0; i < 8000; ++i) {
    int64_t bucket = rng.UniformInt(0, 9);
    const char* flag = rng.Bernoulli(0.5) ? "on" : "off";
    // Bucket-dependent mean creates iceberg cells.
    double v = rng.Normal(10.0 * static_cast<double>(bucket + 1), 1.0);
    ASSERT_TRUE(table.AppendRow({Value(bucket), Value(flag), Value(v)}).ok());
  }
  MeanLoss loss("v");
  TabulaOptions opts;
  opts.cubed_attributes = {"bucket", "flag"};
  opts.loss = &loss;
  opts.threshold = 0.05;
  auto tabula = Tabula::Initialize(table, opts);
  ASSERT_TRUE(tabula.ok()) << tabula.status().ToString();
  EXPECT_GT(tabula.value()->init_stats().iceberg_cells, 0u);

  auto answer = tabula.value()->Query(
      {{"bucket", CompareOp::kEq, Value(int64_t{7})}});
  ASSERT_TRUE(answer.ok());
  auto pred = BoundPredicate::Bind(
      table, {{"bucket", CompareOp::kEq, Value(int64_t{7})}});
  DatasetView truth(&table, pred->FilterAll());
  EXPECT_LE(loss.Loss(truth, answer->sample).value(), 0.05);

  // Unknown integer value → provably empty cell.
  auto missing = tabula.value()->Query(
      {{"bucket", CompareOp::kEq, Value(int64_t{99})}});
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->empty_cell);
}

TEST_F(TabulaEndToEnd, QueryIsFast) {
  MeanLoss loss("fare_amount");
  auto tab = Tabula::Initialize(*table_, BaseOptions(&loss, 0.05));
  ASSERT_TRUE(tab.ok());
  auto answer = tab.value()->Query(
      {{"payment_type", CompareOp::kEq, Value("Cash")}});
  ASSERT_TRUE(answer.ok());
  // A cube lookup is a hash probe: sub-millisecond on any hardware.
  EXPECT_LT(answer->data_system_millis, 5.0);
}

}  // namespace
}  // namespace tabula

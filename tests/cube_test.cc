#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.h"
#include "cube/cost_model.h"
#include "cube/dry_run.h"
#include "cube/lattice.h"
#include "cube/real_run.h"
#include "loss/mean_loss.h"
#include "sampling/random_sampler.h"
#include "storage/table.h"

namespace tabula {
namespace {

/// Small table with a deliberately skewed group so iceberg cells exist:
/// group ("b", *) has values far from the global mean.
std::unique_ptr<Table> SkewedTable(size_t n = 4000, uint64_t seed = 5) {
  Schema schema({{"g1", DataType::kCategorical},
                 {"g2", DataType::kCategorical},
                 {"v", DataType::kDouble}});
  auto table = std::make_unique<Table>(schema);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    bool outlier = rng.Bernoulli(0.08);
    const char* g1 = outlier ? "b" : "a";
    const char* g2 = rng.Bernoulli(0.5) ? "p" : "q";
    double v = outlier ? rng.Normal(500.0, 5.0) : rng.Normal(50.0, 5.0);
    EXPECT_TRUE(table->AppendRow({Value(g1), Value(g2), Value(v)}).ok());
  }
  return table;
}

struct CubeFixture {
  std::unique_ptr<Table> table;
  KeyEncoder encoder;
  KeyPacker packer;
  Lattice lattice{2};
  std::vector<RowId> global_rows;

  explicit CubeFixture(size_t n = 4000) : table(SkewedTable(n)) {
    auto enc = KeyEncoder::Make(*table, {"g1", "g2"});
    EXPECT_TRUE(enc.ok());
    encoder = std::move(enc).value();
    auto pk = KeyPacker::Make(encoder, {0, 1});
    EXPECT_TRUE(pk.ok());
    packer = std::move(pk).value();
    Rng rng(1);
    DatasetView all(table.get());
    global_rows = RandomSample(all, 300, &rng);
  }

  DatasetView GlobalSample() const {
    return DatasetView(table.get(), global_rows);
  }
};

// ---------- Lattice ----------

TEST(LatticeTest, StructureOf3Attributes) {
  Lattice lattice(3);
  EXPECT_EQ(lattice.num_cuboids(), 8u);
  EXPECT_EQ(lattice.finest(), 0b111u);
  EXPECT_EQ(lattice.GroupingList(0b101), (std::vector<size_t>{0, 2}));
  auto parents = lattice.Parents(0b001);
  EXPECT_EQ(parents, (std::vector<CuboidMask>{0b011, 0b101}));
  auto children = lattice.Children(0b011);
  EXPECT_EQ(children, (std::vector<CuboidMask>{0b010, 0b001}));
}

TEST(LatticeTest, TopDownOrderIsByPopcount) {
  Lattice lattice(3);
  auto order = lattice.TopDownOrder();
  EXPECT_EQ(order.front(), 0b111u);
  EXPECT_EQ(order.back(), 0u);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(std::popcount(order[i - 1]), std::popcount(order[i]));
  }
}

TEST(LatticeTest, Labels) {
  std::vector<std::string> names{"D", "C", "M"};
  EXPECT_EQ(Lattice::Label(0b111, names), "D,C,M");
  EXPECT_EQ(Lattice::Label(0b100, names), "M");
  EXPECT_EQ(Lattice::Label(0, names), "All");
}

// ---------- Cost model ----------

TEST(CostModelTest, FewIcebergCellsPreferJoin) {
  // 1 iceberg cell out of 10k cells on a 1M-row table: pruning wins.
  EXPECT_TRUE(PreferJoinPath(1e6, 1.0, 1e4));
}

TEST(CostModelTest, ManyIcebergCellsPreferGroupBy) {
  // Nearly all cells iceberg: the prune pass is pure overhead.
  EXPECT_FALSE(PreferJoinPath(1e6, 9.9e3, 1e4));
}

TEST(CostModelTest, DegenerateInputs) {
  EXPECT_TRUE(PreferJoinPath(1e6, 0.0, 100.0));
  EXPECT_FALSE(PreferJoinPath(1e6, 1.0, 1.0));
  EXPECT_DOUBLE_EQ(IcebergRowFraction(5, 10), 0.5);
  EXPECT_DOUBLE_EQ(IcebergRowFraction(20, 10), 1.0);
  EXPECT_DOUBLE_EQ(IcebergRowFraction(5, 0), 1.0);
}

// ---------- Cube / sample tables ----------

TEST(CubeTableTest, AddFindDrop) {
  CubeTable cube;
  IcebergCell cell;
  cell.key = 42;
  cell.cuboid = 0b01;
  cell.raw_rows = {1, 2, 3};
  cell.local_sample = {1};
  cube.Add(std::move(cell));
  ASSERT_NE(cube.Find(42), nullptr);
  EXPECT_EQ(cube.Find(42)->raw_rows.size(), 3u);
  EXPECT_EQ(cube.Find(7), nullptr);
  EXPECT_GT(cube.RawDataBytes(), 0u);
  cube.DropRawData();
  EXPECT_EQ(cube.RawDataBytes(), 0u);
  EXPECT_GT(cube.MemoryBytes(), 0u);
}

TEST(CubeTableTest, RemoveKeepsIndexConsistent) {
  CubeTable cube;
  for (uint64_t key : {10ull, 20ull, 30ull, 40ull}) {
    IcebergCell cell;
    cell.key = key;
    cell.sample_id = static_cast<uint32_t>(key);
    cube.Add(std::move(cell));
  }
  // Removing from the middle swaps the last cell in; lookups must still
  // find every remaining key.
  EXPECT_TRUE(cube.Remove(20));
  EXPECT_FALSE(cube.Remove(20));
  EXPECT_EQ(cube.size(), 3u);
  EXPECT_EQ(cube.Find(20), nullptr);
  for (uint64_t key : {10ull, 30ull, 40ull}) {
    const IcebergCell* cell = cube.Find(key);
    ASSERT_NE(cell, nullptr) << key;
    EXPECT_EQ(cell->key, key);
    EXPECT_EQ(cell->sample_id, static_cast<uint32_t>(key));
  }
  // Removing the last element and a head element also stays consistent.
  EXPECT_TRUE(cube.Remove(40));
  EXPECT_TRUE(cube.Remove(10));
  EXPECT_EQ(cube.size(), 1u);
  EXPECT_NE(cube.Find(30), nullptr);
}

TEST(SampleTableTest, AddAndMeasure) {
  SampleTable samples;
  uint32_t id0 = samples.Add({1, 2, 3});
  uint32_t id1 = samples.Add({4});
  EXPECT_EQ(id0, 0u);
  EXPECT_EQ(id1, 1u);
  EXPECT_EQ(samples.TotalTuples(), 4u);
  EXPECT_EQ(samples.sample(id1), (std::vector<RowId>{4}));
  // Tuple-width costing scales linearly.
  EXPECT_GT(samples.MemoryBytes(100), samples.MemoryBytes(4));
}

// ---------- Dry run ----------

TEST(DryRunTest, FindsSkewedIcebergCells) {
  CubeFixture fx;
  MeanLoss loss("v");
  auto dry = RunDryRun(*fx.table, fx.encoder, fx.packer, fx.lattice, loss,
                       fx.GlobalSample(), 0.10);
  ASSERT_TRUE(dry.ok());
  // The skewed group ("b") deviates ~10x from the global mean: iceberg
  // cells must exist, and cells dominated by "a" must not all be iceberg.
  EXPECT_GT(dry->total_iceberg_cells, 0u);
  EXPECT_LT(dry->total_iceberg_cells, dry->total_cells);

  // Find the (g1=b, *) cell in the g1 cuboid.
  auto code_b = fx.encoder.CodeForValue(0, Value("b"));
  ASSERT_TRUE(code_b.ok());
  uint64_t key_b = fx.packer.PackCodes({code_b.value(), kNullCode});
  const auto& g1_info = dry->cuboids[0b01];
  EXPECT_NE(std::find(g1_info.iceberg_keys.begin(), g1_info.iceberg_keys.end(),
                      key_b),
            g1_info.iceberg_keys.end());
}

TEST(DryRunTest, CellCountsMatchDataCube) {
  CubeFixture fx;
  MeanLoss loss("v");
  auto dry = RunDryRun(*fx.table, fx.encoder, fx.packer, fx.lattice, loss,
                       fx.GlobalSample(), 0.10);
  ASSERT_TRUE(dry.ok());
  // g1 has 2 values, g2 has 2: cuboids have 4, 2, 2, 1 cells.
  EXPECT_EQ(dry->cuboids[0b11].total_cells, 4u);
  EXPECT_EQ(dry->cuboids[0b01].total_cells, 2u);
  EXPECT_EQ(dry->cuboids[0b10].total_cells, 2u);
  EXPECT_EQ(dry->cuboids[0b00].total_cells, 1u);
  EXPECT_EQ(dry->total_cells, 9u);
}

TEST(DryRunTest, RolledUpLossMatchesDirectComputation) {
  CubeFixture fx;
  MeanLoss loss("v");
  // θ chosen so iceberg-ness flips per cell; verify against direct loss.
  double theta = 0.10;
  auto dry = RunDryRun(*fx.table, fx.encoder, fx.packer, fx.lattice, loss,
                       fx.GlobalSample(), theta);
  ASSERT_TRUE(dry.ok());

  // For every cuboid and every cell, recompute loss(cell, global) directly
  // and check iceberg classification.
  for (CuboidMask mask = 0; mask < 4; ++mask) {
    GroupedRows groups = fx.lattice.GroupingList(mask).empty()
                             ? GroupedRows{}
                             : GroupedRows{};
    // Direct per-row partition under this mask.
    std::unordered_map<uint64_t, std::vector<RowId>> cells;
    for (RowId r = 0; r < fx.table->num_rows(); ++r) {
      cells[fx.packer.PackRowMasked(fx.encoder, r, mask)].push_back(r);
    }
    std::unordered_set<uint64_t> iceberg(dry->cuboids[mask].iceberg_keys.begin(),
                                         dry->cuboids[mask].iceberg_keys.end());
    for (const auto& [key, rows] : cells) {
      DatasetView cell_view(fx.table.get(), rows);
      double direct = loss.Loss(cell_view, fx.GlobalSample()).value();
      EXPECT_EQ(iceberg.count(key) > 0, direct > theta)
          << "mask=" << mask << " key=" << key << " direct=" << direct;
    }
  }
}

TEST(DryRunTest, LowerThresholdMoreIcebergCells) {
  CubeFixture fx;
  MeanLoss loss("v");
  auto strict = RunDryRun(*fx.table, fx.encoder, fx.packer, fx.lattice, loss,
                          fx.GlobalSample(), 0.001);
  auto loose = RunDryRun(*fx.table, fx.encoder, fx.packer, fx.lattice, loss,
                         fx.GlobalSample(), 0.5);
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(loose.ok());
  EXPECT_GE(strict->total_iceberg_cells, loose->total_iceberg_cells);
}

// ---------- Real run ----------

TEST(RealRunTest, MaterializesSamplesForAllIcebergCells) {
  CubeFixture fx;
  MeanLoss loss("v");
  double theta = 0.10;
  auto dry = RunDryRun(*fx.table, fx.encoder, fx.packer, fx.lattice, loss,
                       fx.GlobalSample(), theta);
  ASSERT_TRUE(dry.ok());
  GreedySamplerOptions opts;
  auto real = RunRealRun(*fx.table, fx.encoder, fx.packer, fx.lattice, *dry,
                         loss, theta, opts);
  ASSERT_TRUE(real.ok());
  EXPECT_EQ(real->cube.size(), dry->total_iceberg_cells);
  for (const auto& cell : real->cube.cells()) {
    EXPECT_FALSE(cell.raw_rows.empty());
    ASSERT_FALSE(cell.local_sample.empty());
    // Guarantee: each local sample is within θ of its cell's raw data.
    DatasetView raw(fx.table.get(), cell.raw_rows);
    DatasetView sample(fx.table.get(), cell.local_sample);
    EXPECT_LE(loss.Loss(raw, sample).value(), theta);
  }
}

TEST(RealRunTest, SkipsNonIcebergCuboids) {
  CubeFixture fx;
  MeanLoss loss("v");
  auto dry = RunDryRun(*fx.table, fx.encoder, fx.packer, fx.lattice, loss,
                       fx.GlobalSample(), 0.10);
  ASSERT_TRUE(dry.ok());
  GreedySamplerOptions opts;
  auto real = RunRealRun(*fx.table, fx.encoder, fx.packer, fx.lattice, *dry,
                         loss, 0.10, opts);
  ASSERT_TRUE(real.ok());
  size_t iceberg_cuboids = 0;
  for (const auto& info : dry->cuboids) {
    if (!info.iceberg_keys.empty()) ++iceberg_cuboids;
  }
  EXPECT_EQ(real->per_cuboid.size(), iceberg_cuboids);
}

TEST(RealRunTest, CellRawRowsMatchPartition) {
  CubeFixture fx(1000);
  MeanLoss loss("v");
  auto dry = RunDryRun(*fx.table, fx.encoder, fx.packer, fx.lattice, loss,
                       fx.GlobalSample(), 0.05);
  ASSERT_TRUE(dry.ok());
  GreedySamplerOptions opts;
  auto real = RunRealRun(*fx.table, fx.encoder, fx.packer, fx.lattice, *dry,
                         loss, 0.05, opts);
  ASSERT_TRUE(real.ok());
  for (const auto& cell : real->cube.cells()) {
    // Recompute the cell's member rows directly.
    std::vector<RowId> expected;
    for (RowId r = 0; r < fx.table->num_rows(); ++r) {
      if (fx.packer.PackRowMasked(fx.encoder, r, cell.cuboid) == cell.key) {
        expected.push_back(r);
      }
    }
    std::vector<RowId> got = cell.raw_rows;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
  }
}

}  // namespace
}  // namespace tabula

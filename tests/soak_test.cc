/// Bounded in-tree runs of the seed-reproducible soak driver
/// (src/testing/scenario.h). The full-length fault-matrix runs live in
/// CI via tools/soak_runner; here we keep the step counts small enough
/// for the tier-1 suite while still covering the properties the driver
/// exists for: every invariant holds under injected faults, and the
/// same seed replays to the identical scenario trace.

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "testing/fault_injection.h"
#include "testing/scenario.h"

namespace tabula {
namespace {

SoakOptions BoundedOptions(uint64_t seed, size_t steps, bool faults) {
  SoakOptions options;
  options.seed = seed;
  options.steps = steps;
  options.faults = faults;
  options.base_rows = 2000;
  options.append_pool = 1500;
  return options;
}

void ExpectClean(const SoakReport& report, uint64_t seed) {
  EXPECT_TRUE(report.ok()) << "seed " << seed << ": "
                           << report.violations.size() << " violation(s), "
                           << (report.violations.empty()
                                   ? ""
                                   : report.violations.front());
  EXPECT_GT(report.queries, 0u);
  EXPECT_GT(report.theta_checks, 0u);
}

TEST(SoakTest, InvariantsHoldUnderFaultsAcrossSeeds) {
  for (uint64_t seed : {1, 7, 23}) {
    auto run = RunSoak(BoundedOptions(seed, 80, /*faults=*/true));
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    ExpectClean(run.value(), seed);
  }
  EXPECT_FALSE(FaultInjector::AnyArmed())
      << "the soak driver must disarm every fault it armed";
}

TEST(SoakTest, InvariantsHoldWithoutFaults) {
  auto run = RunSoak(BoundedOptions(5, 80, /*faults=*/false));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ExpectClean(run.value(), 5);
  EXPECT_EQ(run.value().injected_refresh_failures, 0u);
  EXPECT_EQ(run.value().injected_save_failures, 0u);
  EXPECT_EQ(run.value().fault_toggles, 0u);
}

TEST(SoakTest, SameSeedReplaysToIdenticalTrace) {
  SoakOptions options = BoundedOptions(11, 60, /*faults=*/true);
  auto first = RunSoak(options);
  auto second = RunSoak(options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_TRUE(first.value().ok());
  ASSERT_TRUE(second.value().ok());
  // Byte-identical traces: op choices, fault schedules, injected
  // failures, and every deterministic outcome replay exactly.
  EXPECT_EQ(first.value().trace, second.value().trace);
  EXPECT_EQ(first.value().final_generation, second.value().final_generation);
  EXPECT_EQ(first.value().injected_refresh_failures,
            second.value().injected_refresh_failures);
  EXPECT_EQ(first.value().injected_save_failures,
            second.value().injected_save_failures);
}

TEST(SoakTest, SameSeedIsThreadCountInvariant) {
  // The determinism guarantee the flat-hash build engine pins down:
  // aggregation maps have no stdlib-hash iteration order, parallel folds
  // merge fixed chunks in ascending order, and every output path walks
  // sorted packed keys — so the whole scenario trace is byte-identical
  // whether the global pool has 1 worker or 8 (oversubscribed or not).
  SoakOptions options = BoundedOptions(19, 60, /*faults=*/true);

  auto run_with_threads = [&](size_t threads) {
    ThreadPool pool(threads);
    ThreadPool::SetGlobalForTest(&pool);
    auto run = RunSoak(options);
    ThreadPool::SetGlobalForTest(nullptr);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return std::move(run).value();
  };

  SoakReport single = run_with_threads(1);
  SoakReport multi = run_with_threads(8);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(single.trace, multi.trace)
      << "scenario trace depends on thread count";
  EXPECT_EQ(single.final_generation, multi.final_generation);
  EXPECT_EQ(single.queries, multi.queries);
  EXPECT_EQ(single.theta_checks, multi.theta_checks);
}

TEST(SoakTest, DifferentSeedsDiverge) {
  auto a = RunSoak(BoundedOptions(2, 60, /*faults=*/true));
  auto b = RunSoak(BoundedOptions(3, 60, /*faults=*/true));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.value().trace, b.value().trace);
}

}  // namespace
}  // namespace tabula
